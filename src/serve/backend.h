// Pluggable inference backends for the serving runtime.
//
// A Backend answers one question — "class predictions for this image
// batch" — behind which the three execution paths of the reproduction sit:
//
//  * fp32  — plain float Network::forward at the training input scale.
//  * quant — the paper's deployed M-bit path: inputs are encoded like the
//            SNC input encoder would (scale, round, clamp) and inter-layer
//            signals run through the attached IntegerSignalQuantizer.
//  * snc   — full spike-level execution on SncSystem. infer() is per-image
//            and stateful, so the backend keeps a pool of identically
//            programmed replica systems and fans a batch out over the
//            process thread pool, one replica per in-flight image.
//
// Contracts: infer_batch takes [N, C, H, W] pixels in [0, 1] and returns N
// predictions in order. A Backend instance is driven by one batcher thread
// at a time (the MicroBatcher is its only caller); it may parallelize
// internally. Backends never mutate their Network between calls, so
// results are deterministic for a given checkpoint.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fixed_point.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "snc/snc_system.h"

namespace qsnc::serve {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Backend kind name ("fp32" | "quant" | "snc"), for reports.
  virtual const std::string& kind() const = 0;

  /// Per-image input shape [C, H, W] this backend expects.
  virtual const nn::Shape& input_shape() const = 0;

  /// Class predictions for a [N, C, H, W] batch with pixels in [0, 1].
  /// Throws std::invalid_argument on a shape mismatch.
  virtual std::vector<int64_t> infer_batch(const nn::Tensor& batch) = 0;

  /// Optional backend-specific activity report appended to the serving
  /// stats table (e.g. the snc backend's per-stage spike/sparsity
  /// counters). Empty when the backend has nothing to add.
  virtual std::string activity_report() const { return std::string(); }
};

/// Float forward pass at a fixed input scale (the signal-unit convention —
/// see core/qat_pipeline.h).
class Fp32Backend final : public Backend {
 public:
  Fp32Backend(nn::Network& net, nn::Shape input_chw,
              float input_scale = 16.0f);

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

 private:
  std::string kind_ = "fp32";
  nn::Network& net_;
  nn::Shape input_chw_;
  float input_scale_;
};

/// Fake-quant integer path: attaches an M-bit IntegerSignalQuantizer to
/// the network for its lifetime and encodes inputs to the same grid.
/// Matches `qsnc eval --bits M` / core::evaluate_accuracy(..., bits).
class QuantBackend final : public Backend {
 public:
  QuantBackend(nn::Network& net, nn::Shape input_chw, int bits);
  ~QuantBackend() override;

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

  int bits() const { return bits_; }

 private:
  std::string kind_ = "quant";
  nn::Network& net_;
  nn::Shape input_chw_;
  int bits_;
  float input_scale_;
  std::unique_ptr<core::IntegerSignalQuantizer> quantizer_;
};

/// Spike-level execution on a pool of identically programmed SncSystem
/// replicas. Single-image inferences fan out over util::parallel_for; each
/// in-flight image checks a replica out of a free list (blocking until one
/// frees when the pool is oversubscribed — never deadlocks, since every
/// checkout is returned at the end of its chunk).
class SncBackend final : public Backend {
 public:
  /// Builds `replicas` systems programmed from `net` (replicas <= 0 picks
  /// the thread-pool size). `net` must already be BN-folded and weight-
  /// clustered per `config` (see ModelRegistry, which prepares it).
  SncBackend(nn::Network& net, nn::Shape input_chw,
             const snc::SncConfig& config, int replicas = 0);

  const std::string& kind() const override { return kind_; }
  const nn::Shape& input_shape() const override { return input_chw_; }
  std::vector<int64_t> infer_batch(const nn::Tensor& batch) override;

  /// Per-stage spike / input-sparsity table aggregated over every image
  /// served so far (empty before the first inference).
  std::string activity_report() const override;

  /// Aggregate activity over all served images (stage entries summed
  /// elementwise); `images` is the number of inferences folded in.
  snc::SncStats activity_totals(int64_t* images = nullptr) const;

  size_t replica_count() const { return replicas_.size(); }

 private:
  snc::SncSystem* acquire();
  void release(snc::SncSystem* system);
  void fold_stats(const snc::SncStats& stats);

  std::string kind_ = "snc";
  nn::Shape input_chw_;
  std::vector<std::unique_ptr<snc::SncSystem>> replicas_;
  std::vector<snc::SncSystem*> free_;
  std::mutex mu_;
  std::condition_variable cv_;

  mutable std::mutex stats_mu_;
  snc::SncStats totals_;      // stage-wise sums over all served images
  int64_t stat_images_ = 0;
};

/// Throws std::invalid_argument unless `batch` is [N, C, H, W] matching
/// the per-image shape. Returns N.
int64_t check_batch_shape(const nn::Tensor& batch, const nn::Shape& chw);

}  // namespace qsnc::serve
