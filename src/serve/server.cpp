#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace qsnc::serve {

// ---------------------------------------------------------------------------
// ServeCore
// ---------------------------------------------------------------------------

ServeCore::ServeCore(const ModelRegistry& registry,
                     const BatchOptions& options)
    : registry_(registry) {
  for (const std::string& name : registry.names()) {
    batchers_[name] =
        std::make_unique<MicroBatcher>(registry.backend(name), options);
  }
}

ServeCore::~ServeCore() { drain(); }

std::future<Response> ServeCore::infer_async(const std::string& model,
                                             nn::Tensor image,
                                             uint64_t deadline_us) {
  const auto it = batchers_.find(model);
  if (it == batchers_.end()) {
    std::promise<Response> promise;
    Response r;
    r.status = Status::kError;
    r.error = "unknown model '" + model + "'";
    promise.set_value(std::move(r));
    return promise.get_future();
  }
  return it->second->submit(std::move(image), deadline_us);
}

Response ServeCore::infer(const std::string& model, nn::Tensor image,
                          uint64_t deadline_us) {
  return infer_async(model, std::move(image), deadline_us).get();
}

void ServeCore::drain() {
  for (auto& [name, batcher] : batchers_) {
    (void)name;
    batcher->drain();
  }
}

MicroBatcher& ServeCore::batcher(const std::string& model) {
  const auto it = batchers_.find(model);
  if (it == batchers_.end()) {
    throw std::invalid_argument("ServeCore: unknown model '" + model + "'");
  }
  return *it->second;
}

std::vector<ModelStatsSnapshot> ServeCore::stats() const {
  std::vector<ModelStatsSnapshot> out;
  out.reserve(batchers_.size());
  for (const auto& [name, batcher] : batchers_) {
    ModelStatsSnapshot s = batcher->stats();
    s.model = name;
    out.push_back(std::move(s));
  }
  return out;
}

std::string ServeCore::stats_report() const {
  std::string out = render_stats(stats());
  // Backend activity appendices (e.g. per-stage spike/sparsity counters
  // from the snc spiking engine).
  for (const auto& [name, batcher] : batchers_) {
    (void)batcher;
    const std::string activity = registry_.backend(name).activity_report();
    if (!activity.empty()) {
      out += "\n" + name + " activity:\n" + activity;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------------

namespace {

void send_all(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

volatile std::sig_atomic_t g_signal_stop = 0;

void on_stop_signal(int) { g_signal_stop = 1; }

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

struct SocketServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

SocketServer::SocketServer(ServeCore& core, std::string socket_path)
    : core_(core), socket_path_(std::move(socket_path)) {
  const sockaddr_un addr = make_address(socket_path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + socket_path_ + ": " + err);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++connections_accepted_;
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
    reap_finished();
  }
}

void SocketServer::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load()) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::handle_connection(Connection* connection) {
  FrameReader reader;
  uint8_t buf[64 * 1024];
  try {
    for (;;) {
      const ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
      if (n == 0) break;  // EOF (client done, or stop() half-closed us)
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      reader.feed(buf, static_cast<size_t>(n));
      while (auto frame = reader.next()) {
        if (frame->type == MsgType::kInferRequest) {
          InferRequest request = decode_infer_request(frame->body);
          InferResponse response;
          response.id = request.id;
          response.response = core_.infer(
              request.model, std::move(request.image), request.deadline_us);
          send_all(connection->fd, encode_infer_response(response));
        } else if (frame->type == MsgType::kStatsRequest) {
          send_all(connection->fd,
                   encode_stats_response(core_.stats_report()));
        } else {
          throw ProtocolError("unexpected message type");
        }
      }
    }
  } catch (const std::exception&) {
    // Malformed frame or broken pipe: drop the connection. The socket is
    // closed by the reaper; in-process state is untouched.
  }
  connection->finished.store(true);
}

void SocketServer::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  // 1. No new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  // 2. Half-close every connection for reading: a handler blocked in
  //    recv() sees EOF; one mid-request still writes its response.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
  // 3. Wait for handlers, then complete everything already accepted.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      ::close(connection->fd);
    }
    connections_.clear();
  }
  core_.drain();
}

void SocketServer::run_until_signal() {
  g_signal_stop = 0;
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);
  while (!g_signal_stop && !stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  stop();
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::SocketClient(const std::string& socket_path) {
  const sockaddr_un addr = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect to " + socket_path + ": " + err);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame SocketClient::roundtrip(const std::vector<uint8_t>& frame) {
  send_all(fd_, frame);
  uint8_t buf[64 * 1024];
  for (;;) {
    if (auto f = reader_.next()) return *f;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      throw std::runtime_error("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") +
                               std::strerror(errno));
    }
    reader_.feed(buf, static_cast<size_t>(n));
  }
}

Response SocketClient::infer(const std::string& model,
                             const nn::Tensor& image,
                             uint64_t deadline_us) {
  InferRequest request;
  request.id = next_id_++;
  request.deadline_us = deadline_us;
  request.model = model;
  request.image = image;
  const Frame frame = roundtrip(encode_infer_request(request));
  if (frame.type != MsgType::kInferResponse) {
    throw std::runtime_error("unexpected response type");
  }
  InferResponse response = decode_infer_response(frame.body);
  if (response.id != request.id) {
    throw std::runtime_error("response id mismatch");
  }
  return std::move(response.response);
}

std::string SocketClient::stats() {
  const Frame frame = roundtrip(encode_stats_request());
  if (frame.type != MsgType::kStatsResponse) {
    throw std::runtime_error("unexpected response type");
  }
  return decode_stats_response(frame.body);
}

}  // namespace qsnc::serve
