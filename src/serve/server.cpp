#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace qsnc::serve {

// ---------------------------------------------------------------------------
// ServeCore
// ---------------------------------------------------------------------------

namespace {

std::future<Response> error_future(const std::string& message) {
  std::promise<Response> promise;
  Response r;
  r.status = Status::kError;
  r.error = message;
  promise.set_value(std::move(r));
  return promise.get_future();
}

}  // namespace

std::string JournalReconcileReport::to_string() const {
  std::string out = "journal: replayed " + std::to_string(records_replayed) +
                    " record(s), applied " + std::to_string(applied) +
                    ", skipped " + std::to_string(skipped);
  if (tail_dropped) out += "; dropped torn tail (" + tail_reason + ")";
  for (const std::string& e : errors) out += "\n  journal: " + e;
  return out;
}

ServeCore::ServeCore(ModelRegistry& registry, const BatchOptions& options,
                     const RolloutOptions& rollout_options)
    : registry_(registry), batch_options_(options) {
  for (const std::string& name : registry.names()) {
    add_model_locked(name);
  }
  rollout_ = std::make_unique<RolloutController>(*this, rollout_options);
}

ServeCore::~ServeCore() { drain(); }

void ServeCore::add_model_locked(const std::string& key) {
  if (models_.count(key) != 0) return;
  auto lanes = std::make_unique<ModelLanes>();
  const size_t shards = registry_.num_shards(key);
  for (size_t shard = 0; shard < shards; ++shard) {
    lanes->lanes.push_back(std::make_unique<MicroBatcher>(
        registry_.backend(key, shard), batch_options_));
  }
  models_[key] = std::move(lanes);
}

void ServeCore::add_model(const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(models_mu_);
  add_model_locked(key);
}

ServeCore::ModelLanes* ServeCore::find_lanes(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(models_mu_);
  const auto it = models_.find(key);
  // ModelLanes objects are heap-held and never erased, so the pointer
  // stays valid after the lock drops; the map shape alone is guarded.
  return it == models_.end() ? nullptr : it->second.get();
}

std::future<Response> ServeCore::submit_to(const std::string& key,
                                           nn::Tensor image,
                                           uint64_t deadline_us,
                                           Priority priority) {
  ModelLanes* lanes = find_lanes(key);
  if (lanes == nullptr) {
    return error_future("unknown model '" + key + "'");
  }
  size_t pick = 0;
  if (lanes->lanes.size() > 1) {
    // Power-of-two-choices: compare the round-robin candidate against its
    // successor, take the shorter queue (tie -> the candidate). Fully
    // deterministic given the submission order, and enough to keep one
    // slow lane from accumulating the whole backlog.
    const size_t n = lanes->lanes.size();
    const size_t a = lanes->rr.fetch_add(1, std::memory_order_relaxed) % n;
    const size_t b = (a + 1) % n;
    pick = lanes->lanes[b]->queue_depth() < lanes->lanes[a]->queue_depth()
               ? b
               : a;
  }
  return lanes->lanes[pick]->submit(std::move(image), deadline_us, priority);
}

std::future<Response> ServeCore::infer_async(const std::string& model,
                                             nn::Tensor image,
                                             uint64_t deadline_us,
                                             Priority priority) {
  const std::string key = registry_.resolve(model);
  if (key.empty()) {
    return error_future("unknown model '" + model + "'");
  }
  // A quarantined (rolled-back) version refuses explicitly-pinned
  // requests; bare names never resolve here because the active pointer
  // moved off it at rollback time.
  if (registry_.state(key) == VersionState::kQuarantined) {
    return error_future("model version '" + key +
                        "' is quarantined (rolled back)");
  }
  if (rollout_ != nullptr) {
    auto shadowed =
        rollout_->maybe_shadow(key, image, deadline_us, priority);
    if (shadowed.has_value()) return std::move(*shadowed);
  }
  return submit_to(key, std::move(image), deadline_us, priority);
}

Response ServeCore::infer(const std::string& model, nn::Tensor image,
                          uint64_t deadline_us, Priority priority) {
  return infer_async(model, std::move(image), deadline_us, priority).get();
}

std::string ServeCore::register_version(const LoadVersionRequest& request) {
  const auto [base, version] = split_versioned_name(request.name);
  (void)version;
  const std::string active = registry_.active_key(base);
  try {
    // Inherit the blue config where the request doesn't override: a
    // hot-load of "lenet@v2" keeps v1's shards and snc deployment knobs
    // unless the operator says otherwise.
    ModelConfig config =
        active.empty() ? ModelConfig{} : registry_.config(active);
    config.state_path.clear();
    if (!request.architecture.empty()) {
      config.architecture = request.architecture;
    }
    if (!request.backend_kind.empty()) {
      config.backend = parse_backend_kind(request.backend_kind);
    }
    if (request.bits > 0) config.bits = request.bits;
    config.init_seed = request.init_seed;
    if (request.state.empty()) {
      registry_.add(request.name, config);
    } else {
      registry_.add_from_bytes(request.name, config, request.state);
    }
  } catch (const std::exception& e) {
    return std::string("load: ") + e.what();
  }
  add_model(request.name);
  install_quarantine_hooks(request.name);
  return std::string();
}

RolloutReply ServeCore::load_version(const LoadVersionRequest& request) {
  const auto [base, version] = split_versioned_name(request.name);
  (void)version;
  const std::string active = registry_.active_key(base);
  const std::string error = register_version(request);
  if (!error.empty()) return {false, error};
  journal_load(request, /*append=*/true);
  if (active.empty()) {
    // First version of a new base: it registered active, no rollout.
    return {true, "load: registered " + request.name +
                      " (new base, now active)"};
  }
  const RolloutReply begun = rollout_->begin(request.name);
  if (!begun.ok) {
    // The load itself succeeded — the version sits registered standby,
    // reachable by its explicit name — but no rollout started.
    return {true, "load: registered " + request.name +
                      " standby; rollout not started: " + begun.message};
  }
  return {true, "load: registered " + request.name + "; " + begun.message};
}

void ServeCore::journal_load(const LoadVersionRequest& request, bool append) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  bool known = false;
  for (const auto& [key, req] : journal_loads_) {
    (void)req;
    if (key == request.name) {
      known = true;
      break;
    }
  }
  if (!known) journal_loads_.emplace_back(request.name, request);
  if (append && journal_ != nullptr) {
    journal_->append(JournalRecordType::kLoadVersion,
                     encode_journal_load_version(request));
  }
}

void ServeCore::journal_promote(const std::string& base,
                                const std::string& key) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (journal_ == nullptr) return;
  journal_->append(JournalRecordType::kPromote,
                   encode_journal_promote({base, key}));
}

void ServeCore::journal_rollback(const std::string& key,
                                 const std::string& reason) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  journal_quarantine_reasons_[key] = reason;
  if (journal_ == nullptr) return;
  journal_->append(JournalRecordType::kRollback,
                   encode_journal_rollback({key, reason}));
}

void ServeCore::journal_replica_quarantine(const std::string& model,
                                           uint32_t replica,
                                           const std::string& reason) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (journal_ == nullptr) return;
  journal_->append(JournalRecordType::kReplicaQuarantine,
                   encode_journal_replica_quarantine(
                       {model, replica, reason}));
}

void ServeCore::install_quarantine_hooks(const std::string& key) {
  const size_t shards = registry_.num_shards(key);
  for (size_t shard = 0; shard < shards; ++shard) {
    auto* snc = dynamic_cast<SncBackend*>(&registry_.backend(key, shard));
    if (snc == nullptr) continue;
    snc->set_quarantine_hook(
        [this, key](size_t replica, const std::string& reason) {
          journal_replica_quarantine(key, static_cast<uint32_t>(replica),
                                     reason);
        });
  }
}

std::vector<JournalRecord> ServeCore::journal_snapshot_locked() const {
  std::vector<JournalRecord> snapshot;
  auto emit = [&snapshot](JournalRecordType type,
                          std::vector<uint8_t> payload) {
    JournalRecord record;
    record.type = type;
    record.payload = std::move(payload);
    snapshot.push_back(std::move(record));
  };
  for (const auto& [key, request] : journal_loads_) {
    (void)key;
    emit(JournalRecordType::kLoadVersion,
         encode_journal_load_version(request));
  }
  // Re-derive the pointer records from the live registry: one kPromote
  // per base whose active version is journaled (boot-registered actives
  // need no record — the boot flags recreate them), one kRollback per
  // quarantined journaled version.
  std::map<std::string, bool> bases;
  for (const auto& [key, request] : journal_loads_) {
    (void)request;
    bases[base_model_name(key)] = true;
  }
  for (const auto& [base, unused] : bases) {
    (void)unused;
    const std::string active = registry_.active_key(base);
    if (active.empty()) continue;
    bool journaled = false;
    for (const auto& [key, request] : journal_loads_) {
      (void)request;
      if (key == active) {
        journaled = true;
        break;
      }
    }
    if (journaled) {
      emit(JournalRecordType::kPromote,
           encode_journal_promote({base, active}));
    }
  }
  for (const auto& [key, request] : journal_loads_) {
    (void)request;
    if (registry_.state(key) != VersionState::kQuarantined) continue;
    const auto it = journal_quarantine_reasons_.find(key);
    const std::string reason = it == journal_quarantine_reasons_.end()
                                   ? std::string("quarantined")
                                   : it->second;
    emit(JournalRecordType::kRollback, encode_journal_rollback({key, reason}));
  }
  return snapshot;
}

JournalReconcileReport ServeCore::attach_journal(const std::string& path,
                                                 ChaosInjector* chaos) {
  JournalReconcileReport report;
  const JournalReplayResult replayed = Journal::replay(path);
  report.tail_dropped = replayed.tail_dropped;
  report.tail_reason = replayed.tail_reason;
  for (const JournalRecord& record : replayed.records) {
    ++report.records_replayed;
    try {
      switch (record.type) {
        case JournalRecordType::kLoadVersion: {
          const LoadVersionRequest request =
              decode_journal_load_version(record.payload);
          if (registry_.contains(request.name)) {
            // Boot flags already re-registered this key; their config
            // wins and the entry stays un-journaled.
            ++report.skipped;
            break;
          }
          const std::string error = register_version(request);
          if (!error.empty()) {
            report.errors.push_back(request.name + ": " + error);
            break;
          }
          journal_load(request, /*append=*/false);
          ++report.applied;
          break;
        }
        case JournalRecordType::kPromote: {
          const JournalPromote promote =
              decode_journal_promote(record.payload);
          registry_.set_active(promote.base, promote.key);
          ++report.applied;
          break;
        }
        case JournalRecordType::kRollback: {
          const JournalRollback rollback =
              decode_journal_rollback(record.payload);
          registry_.set_state(rollback.key, VersionState::kQuarantined);
          {
            std::lock_guard<std::mutex> lock(journal_mu_);
            journal_quarantine_reasons_[rollback.key] = rollback.reason;
          }
          ++report.applied;
          break;
        }
        case JournalRecordType::kReplicaQuarantine:
          // Replica-level health is re-derived by the snc monitor on the
          // rebuilt replicas; the record is an audit entry only.
          ++report.skipped;
          break;
      }
    } catch (const std::exception& e) {
      report.errors.push_back(
          std::string(journal_record_type_name(record.type)) + ": " +
          e.what());
    }
  }
  {
    // Compact on attach: the torn tail (if any) is physically dropped and
    // the file restarts from the canonical snapshot of live state.
    std::lock_guard<std::mutex> lock(journal_mu_);
    journal_ = std::make_unique<Journal>(path, chaos);
    journal_->compact(journal_snapshot_locked());
  }
  // Boot-registered models journal their replica quarantines too.
  for (const std::string& key : registry_.names()) {
    install_quarantine_hooks(key);
  }
  return report;
}

void ServeCore::drain() {
  // Comparator first: it stops enqueueing green work and flushes its
  // queued client promises (each resolves once the lanes drain below).
  if (rollout_ != nullptr) rollout_->drain();
  std::shared_lock<std::shared_mutex> lock(models_mu_);
  for (auto& [name, lanes] : models_) {
    (void)name;
    for (auto& lane : lanes->lanes) lane->drain();
  }
}

MicroBatcher& ServeCore::batcher(const std::string& model, size_t lane) {
  ModelLanes* lanes = find_lanes(model);
  if (lanes == nullptr) {
    throw std::invalid_argument("ServeCore: unknown model '" + model + "'");
  }
  if (lane >= lanes->lanes.size()) {
    throw std::invalid_argument("ServeCore: model '" + model +
                                "' has no lane " + std::to_string(lane));
  }
  return *lanes->lanes[lane];
}

size_t ServeCore::num_lanes(const std::string& model) const {
  ModelLanes* lanes = find_lanes(model);
  if (lanes == nullptr) {
    throw std::invalid_argument("ServeCore: unknown model '" + model + "'");
  }
  return lanes->lanes.size();
}

size_t ServeCore::total_queue_depth() const {
  std::shared_lock<std::shared_mutex> lock(models_mu_);
  size_t total = 0;
  for (const auto& [name, lanes] : models_) {
    (void)name;
    for (const auto& lane : lanes->lanes) total += lane->queue_depth();
  }
  return total;
}

std::vector<ModelStatsSnapshot> ServeCore::stats() const {
  std::shared_lock<std::shared_mutex> lock(models_mu_);
  std::vector<ModelStatsSnapshot> out;
  for (const auto& [name, lanes] : models_) {
    const bool sharded = lanes->lanes.size() > 1;
    for (size_t i = 0; i < lanes->lanes.size(); ++i) {
      ModelStatsSnapshot s = lanes->lanes[i]->stats();
      s.model = sharded ? name + "#" + std::to_string(i) : name;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::string ServeCore::stats_report() const {
  std::string out = render_stats(stats());
  // Backend activity appendices (e.g. per-stage spike/sparsity counters
  // from the snc spiking engine), one per shard when sharded.
  {
    std::shared_lock<std::shared_mutex> lock(models_mu_);
    for (const auto& [name, lanes] : models_) {
      const bool sharded = lanes->lanes.size() > 1;
      for (size_t i = 0; i < lanes->lanes.size(); ++i) {
        const std::string activity =
            registry_.backend(name, i).activity_report();
        if (activity.empty()) continue;
        const std::string label =
            sharded ? name + "#" + std::to_string(i) : name;
        out += "\n" + label + " activity:\n" + activity;
      }
    }
  }
  if (rollout_ != nullptr) {
    const std::string rollout_text = rollout_->status_text();
    if (!rollout_text.empty()) out += "\n" + rollout_text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ServeFrameHandler
// ---------------------------------------------------------------------------

bool ServeFrameHandler::handle(const Frame& frame, FrameSink& sink) {
  switch (frame.type) {
    case MsgType::kInferRequest: {
      InferRequest request = decode_infer_request(frame.body);
      InferResponse response;
      response.id = request.id;
      response.response =
          core_.infer(request.model, std::move(request.image),
                      request.deadline_us, request.priority);
      return sink.send(encode_infer_response(response));
    }
    case MsgType::kForwardInfer: {
      // The router->backend spelling: same execution, same reply shape;
      // the route hash is attribution metadata only.
      ForwardedInfer forward = decode_forward_infer(frame.body);
      InferResponse response;
      response.id = forward.request.id;
      response.response = core_.infer(
          forward.request.model, std::move(forward.request.image),
          forward.request.deadline_us, forward.request.priority);
      return sink.send(encode_infer_response(response));
    }
    case MsgType::kStatsRequest:
      return sink.send(encode_stats_response(core_.stats_report()));
    case MsgType::kHello: {
      const Hello hello = decode_hello(frame.body);
      HelloAck ack;
      ack.version = kProtocolVersion;
      ack.accepted = hello.version == kProtocolVersion;
      return sink.send(encode_hello_ack(ack));
    }
    case MsgType::kHealthProbe: {
      const HealthProbe probe = decode_health_probe(frame.body);
      HealthAck ack;
      ack.nonce = probe.nonce;
      ack.healthy = true;
      ack.queue_depth = static_cast<uint32_t>(core_.total_queue_depth());
      ack.versions = core_.registry().active_versions();
      return sink.send(encode_health_ack(ack));
    }
    case MsgType::kLoadVersion: {
      const LoadVersionRequest request = decode_load_version(frame.body);
      return sink.send(encode_rollout_reply(core_.load_version(request)));
    }
    case MsgType::kPromote: {
      const RolloutCommand command = decode_promote(frame.body);
      return sink.send(
          encode_rollout_reply(core_.rollout().promote(command.name)));
    }
    case MsgType::kRollback: {
      const RolloutCommand command = decode_rollback(frame.body);
      return sink.send(encode_rollout_reply(
          core_.rollout().rollback(command.name, command.reason)));
    }
    case MsgType::kRolloutStatus: {
      const RolloutCommand command = decode_rollout_status(frame.body);
      RolloutReply reply;
      reply.ok = true;
      reply.message = core_.rollout().status_text(command.name);
      if (reply.message.empty()) {
        reply.message = command.name.empty()
                            ? "no rollout in progress"
                            : "no rollout for '" + command.name + "'";
      }
      return sink.send(encode_rollout_reply(reply));
    }
    default:
      throw ProtocolError("unexpected message type");
  }
}

// ---------------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollTickMs = 100;

/// Blocking send used by the client. Loops until everything is written.
void send_all(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
}

volatile std::sig_atomic_t g_signal_stop = 0;

void on_stop_signal(int) { g_signal_stop = 1; }

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

struct SocketServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

SocketServer::SocketServer(ServeCore& core,
                           const std::string& endpoint_spec,
                           const SocketServerOptions& options)
    : owned_handler_(std::make_unique<ServeFrameHandler>(core)),
      handler_(*owned_handler_),
      endpoint_(parse_endpoint(endpoint_spec)),
      options_(options) {
  start();
}

SocketServer::SocketServer(FrameHandler& handler, const Endpoint& endpoint,
                           const SocketServerOptions& options)
    : handler_(handler), endpoint_(endpoint), options_(options) {
  start();
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  listen_fd_ = listen_on(endpoint_, 64);
  // Resolve an ephemeral tcp port (port 0) to the kernel-assigned one so
  // endpoint() is always connectable.
  endpoint_ = local_endpoint(listen_fd_, endpoint_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    // Join finished handlers on every tick (not just on new connections),
    // so deadline-reaped connections release their threads promptly.
    reap_finished();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++connections_accepted_;
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      live = connections_.size();
    }
    if (options_.max_connections > 0 &&
        live >= static_cast<size_t>(options_.max_connections)) {
      // Connection-level load shedding: better an immediate close the
      // client can see than an unbounded handler-thread pile-up.
      ++connections_rejected_;
      ::close(fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
  }
}

void SocketServer::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load()) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SocketServer::send_frame(Connection* connection,
                              const std::vector<uint8_t>& bytes) {
  WritePlan plan;
  if (options_.chaos != nullptr) {
    plan = options_.chaos->plan_write(bytes.size());
  } else {
    plan.chunks.push_back(bytes.size());
  }
  const Clock::time_point started = Clock::now();
  size_t offset = 0;
  for (size_t ci = 0; ci < plan.chunks.size(); ++ci) {
    if (ci > 0 && plan.inter_chunk_stall_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan.inter_chunk_stall_us));
    }
    size_t remaining = plan.chunks[ci];
    while (remaining > 0) {
      const ssize_t n =
          ::send(connection->fd, bytes.data() + offset, remaining,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        offset += static_cast<size_t>(n);
        remaining -= static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        return false;  // peer gone
      }
      // Peer is not draining its socket: wait for writability under the
      // write deadline so a stalled reader cannot park this thread (and
      // with it, shutdown) forever.
      if (options_.write_timeout_ms > 0 &&
          Clock::now() - started >=
              std::chrono::milliseconds(options_.write_timeout_ms)) {
        ++connections_reaped_;
        return false;
      }
      pollfd pfd{connection->fd, POLLOUT, 0};
      ::poll(&pfd, 1, kPollTickMs);
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) return false;
    }
    if (plan.disconnect_after_first) return false;  // injected mid-frame cut
  }
  return true;
}

void SocketServer::handle_connection(Connection* connection) {
  // Local adapter handing this connection's send path to the handler.
  struct Sink : FrameSink {
    SocketServer* server;
    Connection* connection;
    bool send(const std::vector<uint8_t>& frame) override {
      return server->send_frame(connection, frame);
    }
  };
  Sink sink;
  sink.server = this;
  sink.connection = connection;

  FrameReader reader;
  uint8_t buf[64 * 1024];
  Clock::time_point last_activity = Clock::now();
  // Infer frames carry the version-sensitive request layout, so they are
  // only accepted after this connection's kHello was accepted: a
  // mixed-version peer fails fast (connection drop) instead of
  // mis-decoding a v4 body with a v3 layout. The model-lifecycle control
  // frames change server state, so they are gated the same way.
  // Version-stable frames (stats, health probes) stay reachable without
  // a handshake.
  bool handshaken = false;
  try {
    for (;;) {
      pollfd pfd{connection->fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, kPollTickMs);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) {
        // Deadline tick: a peer stalled mid-frame gets the (short) read
        // deadline; a quiet connection with no partial frame gets the
        // (long) idle deadline.
        const bool mid_frame = reader.buffered() > 0;
        const int64_t limit_ms =
            mid_frame ? options_.read_timeout_ms : options_.idle_timeout_ms;
        if (limit_ms > 0 &&
            Clock::now() - last_activity >=
                std::chrono::milliseconds(limit_ms)) {
          ++connections_reaped_;
          break;
        }
        continue;
      }
      if (options_.chaos != nullptr) {
        const uint64_t stall = options_.chaos->read_stall_us();
        if (stall > 0 && !stopping_.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall));
        }
      }
      const ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
      if (n == 0) break;  // EOF (client done, or stop() half-closed us)
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      last_activity = Clock::now();
      reader.feed(buf, static_cast<size_t>(n));
      bool drop = false;
      while (auto frame = reader.next()) {
        if (!handshaken) {
          if (frame->type == MsgType::kHello) {
            handshaken =
                decode_hello(frame->body).version == kProtocolVersion;
          } else if (frame->type == MsgType::kInferRequest ||
                     frame->type == MsgType::kForwardInfer) {
            throw ProtocolError("infer frame before kHello handshake");
          } else if (frame->type == MsgType::kLoadVersion ||
                     frame->type == MsgType::kPromote ||
                     frame->type == MsgType::kRollback ||
                     frame->type == MsgType::kRolloutStatus ||
                     frame->type == MsgType::kSuperviseCommand) {
            throw ProtocolError("control frame before kHello handshake");
          }
        }
        if (!handler_.handle(*frame, sink)) {
          drop = true;
          break;
        }
      }
      if (drop) break;
    }
  } catch (const std::exception&) {
    // Malformed frame or broken pipe: drop the connection. The socket is
    // closed by the reaper; in-process state is untouched.
  }
  connection->finished.store(true);
}

void SocketServer::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  // 1. No new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (endpoint_.kind == EndpointKind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  // 2. Half-close every connection for reading: a handler blocked in
  //    poll/recv sees EOF; one mid-request still writes its response
  //    (bounded by write_timeout_ms against a stalled reader).
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
  // 3. Wait for handlers, then let the handler complete everything already
  //    accepted (ServeCore drains; the router closes its backend pool).
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      ::close(connection->fd);
    }
    connections_.clear();
  }
  handler_.on_stop();
}

void SocketServer::run_until_signal() {
  g_signal_stop = 0;
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);
  while (!g_signal_stop && !stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  stop();
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::SocketClient(const std::string& endpoint_spec)
    : SocketClient(parse_endpoint(endpoint_spec)) {}

SocketClient::SocketClient(const Endpoint& endpoint)
    : fd_(connect_to(endpoint)) {}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame SocketClient::roundtrip(const std::vector<uint8_t>& frame) {
  send_all(fd_, frame);
  uint8_t buf[64 * 1024];
  for (;;) {
    if (auto f = reader_.next()) return *f;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      throw std::runtime_error("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") +
                               std::strerror(errno));
    }
    reader_.feed(buf, static_cast<size_t>(n));
  }
}

Response SocketClient::infer(const std::string& model,
                             const nn::Tensor& image, uint64_t deadline_us,
                             Priority priority,
                             const std::string& session) {
  // Servers only accept infer frames on handshaken connections.
  if (!handshaken_ && !handshake()) {
    throw std::runtime_error("server refused protocol version " +
                             std::to_string(kProtocolVersion));
  }
  InferRequest request;
  request.id = next_id_++;
  request.deadline_us = deadline_us;
  request.priority = priority;
  request.session = session;
  request.model = model;
  request.image = image;
  const Frame frame = roundtrip(encode_infer_request(request));
  if (frame.type != MsgType::kInferResponse) {
    throw std::runtime_error("unexpected response type");
  }
  InferResponse response = decode_infer_response(frame.body);
  if (response.id != request.id) {
    throw std::runtime_error("response id mismatch");
  }
  return std::move(response.response);
}

bool SocketClient::handshake(PeerRole role) {
  Hello hello;
  hello.version = kProtocolVersion;
  hello.role = role;
  const Frame frame = roundtrip(encode_hello(hello));
  if (frame.type != MsgType::kHelloAck) {
    throw std::runtime_error("unexpected response type");
  }
  const HelloAck ack = decode_hello_ack(frame.body);
  handshaken_ = ack.accepted && ack.version == kProtocolVersion;
  return handshaken_;
}

HealthAck SocketClient::probe() {
  HealthProbe probe;
  probe.nonce = next_nonce_++;
  const Frame frame = roundtrip(encode_health_probe(probe));
  if (frame.type != MsgType::kHealthAck) {
    throw std::runtime_error("unexpected response type");
  }
  const HealthAck ack = decode_health_ack(frame.body);
  if (ack.nonce != probe.nonce) {
    throw std::runtime_error("health ack nonce mismatch");
  }
  return ack;
}

std::string SocketClient::stats() {
  const Frame frame = roundtrip(encode_stats_request());
  return frame.type == MsgType::kStatsResponse
             ? decode_stats_response(frame.body)
             : throw std::runtime_error("unexpected response type");
}

RolloutReply SocketClient::control_roundtrip(
    const std::vector<uint8_t>& bytes) {
  // Control frames are handshake-gated server-side, exactly like infers.
  if (!handshaken_ && !handshake()) {
    throw std::runtime_error("server refused protocol version " +
                             std::to_string(kProtocolVersion));
  }
  const Frame frame = roundtrip(bytes);
  if (frame.type != MsgType::kRolloutReply) {
    throw std::runtime_error("unexpected response type");
  }
  return decode_rollout_reply(frame.body);
}

RolloutReply SocketClient::load_version(const LoadVersionRequest& request) {
  return control_roundtrip(encode_load_version(request));
}

RolloutReply SocketClient::promote(const std::string& name) {
  RolloutCommand command;
  command.name = name;
  return control_roundtrip(encode_promote(command));
}

RolloutReply SocketClient::rollback(const std::string& name,
                                    const std::string& reason) {
  RolloutCommand command;
  command.name = name;
  command.reason = reason;
  return control_roundtrip(encode_rollback(command));
}

RolloutReply SocketClient::rollout_status(const std::string& name) {
  RolloutCommand command;
  command.name = name;
  return control_roundtrip(encode_rollout_status(command));
}

RolloutReply SocketClient::supervise(const std::string& verb,
                                     const std::string& lane) {
  if (!handshaken_ && !handshake()) {
    throw std::runtime_error("server refused protocol version " +
                             std::to_string(kProtocolVersion));
  }
  SuperviseCommand command;
  command.verb = verb;
  command.lane = lane;
  const Frame frame = roundtrip(encode_supervise_command(command));
  if (frame.type != MsgType::kSuperviseReply) {
    throw std::runtime_error("unexpected response type");
  }
  return decode_supervise_reply(frame.body);
}

}  // namespace qsnc::serve
