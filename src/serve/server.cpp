#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>

namespace qsnc::serve {

// ---------------------------------------------------------------------------
// ServeCore
// ---------------------------------------------------------------------------

ServeCore::ServeCore(const ModelRegistry& registry,
                     const BatchOptions& options)
    : registry_(registry) {
  for (const std::string& name : registry.names()) {
    batchers_[name] =
        std::make_unique<MicroBatcher>(registry.backend(name), options);
  }
}

ServeCore::~ServeCore() { drain(); }

std::future<Response> ServeCore::infer_async(const std::string& model,
                                             nn::Tensor image,
                                             uint64_t deadline_us,
                                             Priority priority) {
  const auto it = batchers_.find(model);
  if (it == batchers_.end()) {
    std::promise<Response> promise;
    Response r;
    r.status = Status::kError;
    r.error = "unknown model '" + model + "'";
    promise.set_value(std::move(r));
    return promise.get_future();
  }
  return it->second->submit(std::move(image), deadline_us, priority);
}

Response ServeCore::infer(const std::string& model, nn::Tensor image,
                          uint64_t deadline_us, Priority priority) {
  return infer_async(model, std::move(image), deadline_us, priority).get();
}

void ServeCore::drain() {
  for (auto& [name, batcher] : batchers_) {
    (void)name;
    batcher->drain();
  }
}

MicroBatcher& ServeCore::batcher(const std::string& model) {
  const auto it = batchers_.find(model);
  if (it == batchers_.end()) {
    throw std::invalid_argument("ServeCore: unknown model '" + model + "'");
  }
  return *it->second;
}

std::vector<ModelStatsSnapshot> ServeCore::stats() const {
  std::vector<ModelStatsSnapshot> out;
  out.reserve(batchers_.size());
  for (const auto& [name, batcher] : batchers_) {
    ModelStatsSnapshot s = batcher->stats();
    s.model = name;
    out.push_back(std::move(s));
  }
  return out;
}

std::string ServeCore::stats_report() const {
  std::string out = render_stats(stats());
  // Backend activity appendices (e.g. per-stage spike/sparsity counters
  // from the snc spiking engine).
  for (const auto& [name, batcher] : batchers_) {
    (void)batcher;
    const std::string activity = registry_.backend(name).activity_report();
    if (!activity.empty()) {
      out += "\n" + name + " activity:\n" + activity;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollTickMs = 100;

/// Blocking send used by the client (and by the server before the
/// options-aware path existed). Loops until everything is written.
void send_all(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

volatile std::sig_atomic_t g_signal_stop = 0;

void on_stop_signal(int) { g_signal_stop = 1; }

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

struct SocketServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
};

SocketServer::SocketServer(ServeCore& core, std::string socket_path,
                           const SocketServerOptions& options)
    : core_(core), socket_path_(std::move(socket_path)), options_(options) {
  const sockaddr_un addr = make_address(socket_path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + socket_path_ + ": " + err);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    // Join finished handlers on every tick (not just on new connections),
    // so deadline-reaped connections release their threads promptly.
    reap_finished();
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++connections_accepted_;
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      live = connections_.size();
    }
    if (options_.max_connections > 0 &&
        live >= static_cast<size_t>(options_.max_connections)) {
      // Connection-level load shedding: better an immediate close the
      // client can see than an unbounded handler-thread pile-up.
      ++connections_rejected_;
      ::close(fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
  }
}

void SocketServer::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load()) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SocketServer::send_frame(Connection* connection,
                              const std::vector<uint8_t>& bytes) {
  WritePlan plan;
  if (options_.chaos != nullptr) {
    plan = options_.chaos->plan_write(bytes.size());
  } else {
    plan.chunks.push_back(bytes.size());
  }
  const Clock::time_point started = Clock::now();
  size_t offset = 0;
  for (size_t ci = 0; ci < plan.chunks.size(); ++ci) {
    if (ci > 0 && plan.inter_chunk_stall_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan.inter_chunk_stall_us));
    }
    size_t remaining = plan.chunks[ci];
    while (remaining > 0) {
      const ssize_t n =
          ::send(connection->fd, bytes.data() + offset, remaining,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        offset += static_cast<size_t>(n);
        remaining -= static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        return false;  // peer gone
      }
      // Peer is not draining its socket: wait for writability under the
      // write deadline so a stalled reader cannot park this thread (and
      // with it, shutdown) forever.
      if (options_.write_timeout_ms > 0 &&
          Clock::now() - started >=
              std::chrono::milliseconds(options_.write_timeout_ms)) {
        ++connections_reaped_;
        return false;
      }
      pollfd pfd{connection->fd, POLLOUT, 0};
      ::poll(&pfd, 1, kPollTickMs);
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) return false;
    }
    if (plan.disconnect_after_first) return false;  // injected mid-frame cut
  }
  return true;
}

void SocketServer::handle_connection(Connection* connection) {
  FrameReader reader;
  uint8_t buf[64 * 1024];
  Clock::time_point last_activity = Clock::now();
  try {
    for (;;) {
      pollfd pfd{connection->fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, kPollTickMs);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) {
        // Deadline tick: a peer stalled mid-frame gets the (short) read
        // deadline; a quiet connection with no partial frame gets the
        // (long) idle deadline.
        const bool mid_frame = reader.buffered() > 0;
        const int64_t limit_ms =
            mid_frame ? options_.read_timeout_ms : options_.idle_timeout_ms;
        if (limit_ms > 0 &&
            Clock::now() - last_activity >=
                std::chrono::milliseconds(limit_ms)) {
          ++connections_reaped_;
          break;
        }
        continue;
      }
      if (options_.chaos != nullptr) {
        const uint64_t stall = options_.chaos->read_stall_us();
        if (stall > 0 && !stopping_.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall));
        }
      }
      const ssize_t n = ::recv(connection->fd, buf, sizeof(buf), 0);
      if (n == 0) break;  // EOF (client done, or stop() half-closed us)
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      last_activity = Clock::now();
      reader.feed(buf, static_cast<size_t>(n));
      bool drop = false;
      while (auto frame = reader.next()) {
        if (frame->type == MsgType::kInferRequest) {
          InferRequest request = decode_infer_request(frame->body);
          InferResponse response;
          response.id = request.id;
          response.response =
              core_.infer(request.model, std::move(request.image),
                          request.deadline_us, request.priority);
          drop = !send_frame(connection, encode_infer_response(response));
        } else if (frame->type == MsgType::kStatsRequest) {
          drop = !send_frame(connection,
                             encode_stats_response(core_.stats_report()));
        } else {
          throw ProtocolError("unexpected message type");
        }
        if (drop) break;
      }
      if (drop) break;
    }
  } catch (const std::exception&) {
    // Malformed frame or broken pipe: drop the connection. The socket is
    // closed by the reaper; in-process state is untouched.
  }
  connection->finished.store(true);
}

void SocketServer::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  // 1. No new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  // 2. Half-close every connection for reading: a handler blocked in
  //    poll/recv sees EOF; one mid-request still writes its response
  //    (bounded by write_timeout_ms against a stalled reader).
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
  // 3. Wait for handlers, then complete everything already accepted.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      ::close(connection->fd);
    }
    connections_.clear();
  }
  core_.drain();
}

void SocketServer::run_until_signal() {
  g_signal_stop = 0;
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int{};
  struct sigaction old_term{};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);
  while (!g_signal_stop && !stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  stop();
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::SocketClient(const std::string& socket_path) {
  const sockaddr_un addr = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect to " + socket_path + ": " + err);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame SocketClient::roundtrip(const std::vector<uint8_t>& frame) {
  send_all(fd_, frame);
  uint8_t buf[64 * 1024];
  for (;;) {
    if (auto f = reader_.next()) return *f;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      throw std::runtime_error("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") +
                               std::strerror(errno));
    }
    reader_.feed(buf, static_cast<size_t>(n));
  }
}

Response SocketClient::infer(const std::string& model,
                             const nn::Tensor& image,
                             uint64_t deadline_us, Priority priority) {
  InferRequest request;
  request.id = next_id_++;
  request.deadline_us = deadline_us;
  request.priority = priority;
  request.model = model;
  request.image = image;
  const Frame frame = roundtrip(encode_infer_request(request));
  if (frame.type != MsgType::kInferResponse) {
    throw std::runtime_error("unexpected response type");
  }
  InferResponse response = decode_infer_response(frame.body);
  if (response.id != request.id) {
    throw std::runtime_error("response id mismatch");
  }
  return std::move(response.response);
}

std::string SocketClient::stats() {
  const Frame frame = roundtrip(encode_stats_request());
  return frame.type == MsgType::kStatsResponse
             ? decode_stats_response(frame.body)
             : throw std::runtime_error("unexpected response type");
}

}  // namespace qsnc::serve
