// Dynamic micro-batching over bounded per-priority request queues, with
// admission control, CoDel-style shedding, and a per-backend circuit
// breaker.
//
// Producers (socket connection handlers, in-process clients, load
// generators) submit single images; one batcher thread per model coalesces
// them into backend calls:
//
//   submit() --> [per-priority bounded queues] --> batcher --> infer_batch
//
// Coalescing rule: once a queue is non-empty the batcher opens a batch
// window; it closes when either `max_batch` requests are collected or
// `batch_timeout_us` has elapsed since the window opened, whichever comes
// first. Batch formation drains highest-priority-first (FIFO within a
// class), so interactive traffic rides ahead of batch traffic under load.
//
// Backpressure ladder (every rung is a structured response, never a drop):
//   1. circuit breaker open  -> kShedded at submit (fast fail; the hint is
//      the time until the half-open probe).
//   2. concurrency limit     -> kShedded at submit.
//   3. queue full            -> kRejected at submit with a retry_after_us
//      hint derived from the observed batch latency and current depth.
//   4. sustained queue delay -> CoDel-style shedding at batch formation:
//      when the oldest request's wait exceeds admission.delay_target_us
//      continuously for delay_window_us, the queue is trimmed to what one
//      target's worth of batches can serve, lowest-priority-first
//      (see serve/admission.h), resolving the trimmed requests kShedded.
//   5. per-request deadline  -> kDeadlineExceeded at batch formation.
//
// Shutdown: drain() stops admission (further submits complete with
// kShutdown), processes every request already accepted, then joins the
// batcher thread — zero accepted requests are ever dropped. The destructor
// drains implicitly.
//
// Chaos hooks (options.chaos, off when null): queue latency spikes before
// a batch executes, injected backend errors (which feed the circuit
// breaker like real ones) and backend latency spikes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/tensor.h"
#include "serve/admission.h"
#include "serve/backend.h"
#include "serve/chaos.h"
#include "serve/metrics.h"

namespace qsnc::serve {

struct BatchOptions {
  int max_batch = 8;
  int64_t batch_timeout_us = 2000;
  int queue_capacity = 256;
  /// Overload protection; all-zero defaults mean "off" (historical
  /// behavior: only queue_capacity backpressure).
  AdmissionOptions admission;
  /// Fault injector for the queue/backend hook points; not owned, may be
  /// null (no chaos). Must outlive the batcher.
  ChaosInjector* chaos = nullptr;
};

enum class Status : uint8_t {
  kOk = 0,
  kRejected = 1,  // bounded queue full; retry after retry_after_us
  kShutdown = 2,  // server draining; request was not accepted
  kError = 3,     // bad shape, unknown model, or backend failure
  kDeadlineExceeded = 4,  // per-request deadline expired before execution
  kShedded = 5,   // overload shed (CoDel / concurrency / open breaker)
};

const char* status_name(Status status);

struct Response {
  Status status = Status::kError;
  int64_t prediction = -1;
  uint64_t latency_us = 0;     // enqueue -> completion (kOk only)
  uint64_t retry_after_us = 0; // backpressure hint (kRejected / kShedded)
  uint32_t batch_size = 0;     // size of the batch this request rode in
  /// True when the batch was served in a degraded backend mode (e.g. the
  /// snc backend's quant fallback after replica quarantines).
  bool degraded = false;
  std::string error;           // human-readable detail (kError only)
};

class MicroBatcher {
 public:
  /// Starts the batcher thread. `backend` must outlive the batcher and is
  /// called only from that thread.
  MicroBatcher(Backend& backend, const BatchOptions& options);
  ~MicroBatcher();  // drains
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one [C, H, W] image. Never blocks: the returned future is
  /// resolved by the batcher thread (kOk / kError / kShedded /
  /// kDeadlineExceeded), or immediately on rejection (kRejected /
  /// kShedded / kShutdown / shape kError).
  ///
  /// `deadline_us` > 0 is a per-request latency budget measured from
  /// enqueue: a request still queued when its budget expires is resolved
  /// with kDeadlineExceeded at batch-formation time instead of being
  /// executed. 0 means no deadline.
  ///
  /// `priority` orders both service (higher classes batch first) and
  /// shedding (lower classes shed first); see serve/admission.h.
  std::future<Response> submit(nn::Tensor image, uint64_t deadline_us = 0,
                               Priority priority = Priority::kInteractive);

  /// Stops admission, completes all accepted requests, joins the thread.
  /// Idempotent.
  void drain();

  size_t queue_depth() const;
  const BatchOptions& options() const { return options_; }
  CircuitBreaker::State breaker_state() const { return breaker_.state(); }

  /// Counters + latency percentiles; queue_depth is filled in.
  ModelStatsSnapshot stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    nn::Tensor image;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    uint64_t deadline_us = 0;  // latency budget from enqueue; 0 = none
    Priority priority = Priority::kInteractive;
  };

  void loop();
  void execute(std::vector<Pending>& batch);
  uint64_t retry_hint_us(size_t depth) const;
  size_t total_queued() const;  // callers hold mu_
  /// Queue depth serveable within one delay target at the observed batch
  /// cadence (>= one max_batch so shedding never starves the server).
  int64_t allowed_depth() const;
  static int64_t to_us(Clock::time_point t);

  Backend& backend_;
  BatchOptions options_;
  ModelMetrics metrics_;
  CircuitBreaker breaker_;
  std::atomic<uint64_t> ema_batch_us_;
  std::atomic<int64_t> in_flight_{0};  // queued + executing

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_[kNumPriorities];  // index = Priority value
  bool stopping_ = false;
  // CoDel state (batcher thread only): when the oldest queued request's
  // wait first went above the delay target, and whether shedding is on.
  bool above_target_ = false;
  Clock::time_point above_since_{};
  bool shedding_ = false;
  std::mutex join_mu_;  // serializes concurrent drain() calls
  std::thread worker_;
};

}  // namespace qsnc::serve
