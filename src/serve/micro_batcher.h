// Dynamic micro-batching over a bounded request queue.
//
// Producers (socket connection handlers, in-process clients, load
// generators) submit single images; one batcher thread per model coalesces
// them into backend calls:
//
//   submit() --> [bounded queue] --> batcher thread --> Backend::infer_batch
//
// Coalescing rule: once the queue is non-empty the batcher opens a batch
// window; it closes when either `max_batch` requests are collected or
// `batch_timeout_us` has elapsed since the window opened, whichever comes
// first. An idle server therefore adds at most one timeout of latency to a
// lone request, and a busy one amortizes the full per-batch fixed costs
// across max_batch requests.
//
// Backpressure: the queue is bounded at `queue_capacity`. When full,
// submit() NEVER blocks — it completes the request immediately with
// Status::kRejected and a retry_after_us hint derived from the observed
// batch latency and current depth. Callers (the socket server, loadgen)
// surface the hint to clients.
//
// Shutdown: drain() stops admission (further submits complete with
// kShutdown), processes every request already accepted, then joins the
// batcher thread — zero accepted requests are ever dropped. The destructor
// drains implicitly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nn/tensor.h"
#include "serve/backend.h"
#include "serve/metrics.h"

namespace qsnc::serve {

struct BatchOptions {
  int max_batch = 8;
  int64_t batch_timeout_us = 2000;
  int queue_capacity = 256;
};

enum class Status : uint8_t {
  kOk = 0,
  kRejected = 1,  // bounded queue full; retry after retry_after_us
  kShutdown = 2,  // server draining; request was not accepted
  kError = 3,     // bad shape, unknown model, or backend failure
  kDeadlineExceeded = 4,  // per-request deadline expired before execution
};

const char* status_name(Status status);

struct Response {
  Status status = Status::kError;
  int64_t prediction = -1;
  uint64_t latency_us = 0;     // enqueue -> completion (kOk only)
  uint64_t retry_after_us = 0; // backpressure hint (kRejected only)
  uint32_t batch_size = 0;     // size of the batch this request rode in
  /// True when the batch was served in a degraded backend mode (e.g. the
  /// snc backend's quant fallback after replica quarantines).
  bool degraded = false;
  std::string error;           // human-readable detail (kError only)
};

class MicroBatcher {
 public:
  /// Starts the batcher thread. `backend` must outlive the batcher and is
  /// called only from that thread.
  MicroBatcher(Backend& backend, const BatchOptions& options);
  ~MicroBatcher();  // drains
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one [C, H, W] image. Never blocks: the returned future is
  /// resolved by the batcher thread (kOk / kError), or immediately on
  /// rejection (kRejected / kShutdown / shape kError).
  ///
  /// `deadline_us` > 0 is a per-request latency budget measured from
  /// enqueue: a request still queued when its budget expires is resolved
  /// with kDeadlineExceeded at batch-formation time instead of being
  /// executed (structured rejection — the client knows its answer would
  /// have arrived too late). 0 means no deadline.
  std::future<Response> submit(nn::Tensor image, uint64_t deadline_us = 0);

  /// Stops admission, completes all accepted requests, joins the thread.
  /// Idempotent.
  void drain();

  size_t queue_depth() const;
  const BatchOptions& options() const { return options_; }

  /// Counters + latency percentiles; queue_depth is filled in.
  ModelStatsSnapshot stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    nn::Tensor image;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    uint64_t deadline_us = 0;  // latency budget from enqueue; 0 = none
  };

  void loop();
  void execute(std::vector<Pending>& batch);
  uint64_t retry_hint_us(size_t depth) const;

  Backend& backend_;
  BatchOptions options_;
  ModelMetrics metrics_;
  std::atomic<uint64_t> ema_batch_us_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes concurrent drain() calls
  std::thread worker_;
};

}  // namespace qsnc::serve
