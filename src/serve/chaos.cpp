#include "serve/chaos.h"

#include <algorithm>
#include <stdexcept>

#include "nn/rng.h"
#include "report/table.h"

namespace qsnc::serve {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ChaosConfig chaos_profile(const std::string& name, uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  if (name == "none") return cfg;
  if (name == "torn") {
    cfg.write_torn_rate = 0.3;
    cfg.write_stall_rate = 0.5;
    cfg.read_stall_rate = 0.1;
    cfg.disconnect_rate = 0.02;
    cfg.io_stall_us = 2000;
    return cfg;
  }
  if (name == "backend") {
    cfg.backend_error_rate = 0.05;
    cfg.backend_latency_rate = 0.2;
    cfg.backend_latency_us = 5000;
    return cfg;
  }
  if (name == "queue") {
    cfg.queue_spike_rate = 0.2;
    cfg.queue_spike_us = 5000;
    return cfg;
  }
  if (name == "soak") {
    cfg.write_torn_rate = 0.2;
    cfg.write_stall_rate = 0.3;
    cfg.read_stall_rate = 0.05;
    cfg.disconnect_rate = 0.01;
    cfg.io_stall_us = 1000;
    cfg.queue_spike_rate = 0.1;
    cfg.queue_spike_us = 2000;
    cfg.backend_error_rate = 0.03;
    cfg.backend_latency_rate = 0.1;
    cfg.backend_latency_us = 2000;
    return cfg;
  }
  throw std::invalid_argument("unknown chaos profile '" + name +
                              "' (none|torn|backend|queue|soak)");
}

ChaosInjector::ChaosInjector(const ChaosConfig& config) : config_(config) {
  for (uint64_t s = 0; s < kNumSites; ++s) {
    site_seed_[s] = nn::Rng::stream_seed(config_.seed, s);
    site_counter_[s].store(0, std::memory_order_relaxed);
  }
}

double ChaosInjector::draw(Site site) {
  const uint64_t n =
      site_counter_[site].fetch_add(1, std::memory_order_relaxed);
  const uint64_t bits = splitmix64(site_seed_[site] ^ n);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

uint64_t ChaosInjector::draw_int(Site site, uint64_t bound) {
  if (bound == 0) return 0;
  const uint64_t n =
      site_counter_[site].fetch_add(1, std::memory_order_relaxed);
  return 1 + splitmix64(site_seed_[site] ^ n) % bound;
}

uint64_t ChaosInjector::read_stall_us() {
  if (config_.read_stall_rate <= 0.0 ||
      draw(kReadStall) >= config_.read_stall_rate) {
    return 0;
  }
  read_stalls_.fetch_add(1, std::memory_order_relaxed);
  return config_.io_stall_us;
}

WritePlan ChaosInjector::plan_write(size_t n) {
  WritePlan plan;
  const bool torn = config_.write_torn_rate > 0.0 && n > 1 &&
                    draw(kWriteTorn) < config_.write_torn_rate;
  if (!torn) {
    plan.chunks.push_back(n);
  } else {
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    // Tear into chunks of 1..max(n/4, 1) bytes so a frame is delivered in
    // at least ~4 pieces — exactly the arbitrary-read-boundary case the
    // incremental FrameReader must absorb.
    size_t remaining = n;
    const uint64_t max_chunk = std::max<uint64_t>(n / 4, 1);
    while (remaining > 0) {
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(draw_int(kChunkSize, max_chunk), remaining));
      plan.chunks.push_back(chunk);
      remaining -= chunk;
    }
    if (config_.write_stall_rate > 0.0 &&
        draw(kWriteStall) < config_.write_stall_rate) {
      write_stalls_.fetch_add(1, std::memory_order_relaxed);
      plan.inter_chunk_stall_us = config_.io_stall_us;
    }
  }
  if (config_.disconnect_rate > 0.0 && plan.chunks.size() > 1 &&
      draw(kDisconnect) < config_.disconnect_rate) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
    plan.disconnect_after_first = true;
  }
  return plan;
}

uint64_t ChaosInjector::queue_spike_us() {
  if (config_.queue_spike_rate <= 0.0 ||
      draw(kQueueSpike) >= config_.queue_spike_rate) {
    return 0;
  }
  queue_spikes_.fetch_add(1, std::memory_order_relaxed);
  return config_.queue_spike_us;
}

uint64_t ChaosInjector::backend_latency_us() {
  if (config_.backend_latency_rate <= 0.0 ||
      draw(kBackendLatency) >= config_.backend_latency_rate) {
    return 0;
  }
  backend_latency_.fetch_add(1, std::memory_order_relaxed);
  return config_.backend_latency_us;
}

size_t ChaosInjector::journal_torn_len(size_t n) {
  if (config_.journal_torn_rate <= 0.0 || n < 2 ||
      draw(kJournalTorn) >= config_.journal_torn_rate) {
    return 0;
  }
  journal_torn_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<size_t>(draw_int(kJournalTorn, n - 1));
}

bool ChaosInjector::backend_error() {
  if (config_.backend_error_rate <= 0.0 ||
      draw(kBackendError) >= config_.backend_error_rate) {
    return false;
  }
  backend_errors_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ChaosStats ChaosInjector::stats() const {
  ChaosStats s;
  s.read_stalls = read_stalls_.load(std::memory_order_relaxed);
  s.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  s.write_stalls = write_stalls_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.queue_spikes = queue_spikes_.load(std::memory_order_relaxed);
  s.backend_errors = backend_errors_.load(std::memory_order_relaxed);
  s.backend_latency = backend_latency_.load(std::memory_order_relaxed);
  s.journal_torn = journal_torn_.load(std::memory_order_relaxed);
  return s;
}

std::string ChaosInjector::report() const {
  const ChaosStats s = stats();
  report::Table t({"read stalls", "torn writes", "write stalls",
                   "disconnects", "queue spikes", "backend errs",
                   "backend lat", "journal torn"});
  t.add_row({std::to_string(s.read_stalls), std::to_string(s.torn_writes),
             std::to_string(s.write_stalls), std::to_string(s.disconnects),
             std::to_string(s.queue_spikes),
             std::to_string(s.backend_errors),
             std::to_string(s.backend_latency),
             std::to_string(s.journal_torn)});
  return t.to_string();
}

}  // namespace qsnc::serve
