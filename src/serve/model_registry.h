// Named-model registry for the serving runtime.
//
// A registry entry owns everything one served model needs: the Network
// built from a model-zoo architecture (optionally restored from a
// checkpoint), any deployment transforms its backend requires (BN folding
// + weight clustering for the spike path), and the Backend instance that
// executes batches. Once add() returns, the entry is immutable — serving
// never retrains, requantizes, or reprograms — which is what makes the
// lock-free read path of the batchers sound.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/network.h"
#include "serve/backend.h"

namespace qsnc::serve {

enum class BackendKind { kFp32, kQuant, kSnc };

/// Parses "fp32" | "quant" | "snc"; throws std::invalid_argument otherwise.
BackendKind parse_backend_kind(const std::string& name);
const char* backend_kind_name(BackendKind kind);

/// Per-image input shape [C, H, W] of a model-zoo architecture name
/// (lenet[-mini] | alexnet[-mini] | resnet[-mini]); throws on unknown.
nn::Shape architecture_input_shape(const std::string& architecture);

struct ModelConfig {
  /// Model-zoo architecture: lenet[-mini] | alexnet[-mini] | resnet[-mini].
  std::string architecture = "lenet-mini";
  /// Shard-pool width: the registry builds this many independent
  /// network+backend instances from the same seed/checkpoint, and
  /// ServeCore runs one batcher lane per shard. Shards are bit-identical
  /// by construction, so which lane serves a request is unobservable in
  /// the prediction. Must be >= 1.
  int shards = 1;
  /// Optional nn::save_state checkpoint to restore; empty serves the
  /// deterministic fresh initialization from `init_seed` (useful for load
  /// tests and demos — predictions are still reproducible).
  std::string state_path;
  BackendKind backend = BackendKind::kFp32;
  /// Signal bits (quant, snc) and weight bits (snc).
  int bits = 4;
  uint64_t init_seed = 1;
  /// SncSystem replica count for the snc backend; <= 0 uses the thread
  /// pool size.
  int snc_replicas = 0;
  /// Run the snc backend on the dense reference engine instead of the
  /// event-driven one (bit-identical outputs; used by equivalence benches
  /// to measure what zero-skipping buys end to end).
  bool snc_dense_reference = false;
  /// Serve each micro-batch window through the batch-native engine on one
  /// replica (bit-identical predictions, panels streamed once per
  /// window). Off restores the per-image replica fan-out; deployments
  /// with snc_health.per_replica_seeds always fan out regardless, since
  /// per-replica fault diversity requires spraying images across the
  /// differently-seeded replicas.
  bool snc_batch_native = true;

  // --- snc device non-idealities + fault recovery ----------------------
  /// Programming-variation / stuck-fault rates injected into every
  /// replica's devices (0 = ideal devices, the historical behavior).
  double snc_variation_sigma = 0.0;
  double snc_stuck_on_rate = 0.0;
  double snc_stuck_off_rate = 0.0;
  /// Closed-loop write-verify programming with differential compensation.
  bool snc_write_verify = false;
  /// Spare columns per crossbar for fault-aware remapping.
  int64_t snc_spare_cols = 0;
  /// Master seed for device draws (per-replica streams when
  /// snc_health.per_replica_seeds is set).
  uint64_t snc_seed = 7;
  /// Replica canary / quarantine / quant-fallback monitoring.
  ReplicaHealthConfig snc_health;
};

class ModelRegistry {
 public:
  ModelRegistry();
  ~ModelRegistry();
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Builds and registers a model under `name`. For kQuant the network
  /// gets a signal quantizer; for kSnc it is BN-folded, weight-clustered
  /// to the N-bit grid, and programmed into SncSystem replicas. Throws
  /// std::invalid_argument on duplicate names, unknown architectures, or
  /// checkpoint/shape mismatches.
  Backend& add(const std::string& name, const ModelConfig& config);

  bool contains(const std::string& name) const;

  /// Throws std::invalid_argument when `name` is not registered.
  /// The one-argument form is shard 0 (the pre-shard API).
  Backend& backend(const std::string& name) const;
  Backend& backend(const std::string& name, size_t shard) const;
  size_t num_shards(const std::string& name) const;
  const ModelConfig& config(const std::string& name) const;
  const nn::Shape& input_shape(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  struct Entry;
  const Entry& entry(const std::string& name) const;

  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace qsnc::serve
