// Named-model registry for the serving runtime, with versioned entries
// and an atomic active-version pointer.
//
// A registry entry owns everything one served model needs: the Network
// built from a model-zoo architecture (optionally restored from a
// checkpoint), any deployment transforms its backend requires (BN folding
// + weight clustering for the spike path), and the Backend instance that
// executes batches. Once add() returns, the entry is immutable — serving
// never retrains, requantizes, or reprograms — which is what makes the
// lock-free read path of the batchers sound.
//
// Versioning: names are "base[@version]" ("lenet-mini@v2"; a bare name
// is the unversioned spelling, version ""). Every registered name is a
// distinct immutable entry; re-registering a name throws. Each base has
// one *active* version — the first registered version of a base becomes
// active, later ones register standby — and resolve() maps a bare base
// name to the active entry while an explicit "base@version" pins that
// exact entry. set_active() flips the pointer under the registry lock:
// lookups that already resolved keep their entry (map nodes are stable
// and entries are never removed), so in-flight micro-batch windows
// finish on the version they started on and a flip never drops a
// request. Lifecycle states (serve/rollout.h drives them): kActive
// serves bare-name traffic, kStandby only explicit-version traffic,
// kShadow is a rollout candidate mirroring a slice of live traffic, and
// kQuarantined is a rolled-back version refusing new requests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "nn/network.h"
#include "serve/backend.h"
#include "serve/protocol.h"

namespace qsnc::serve {

enum class BackendKind { kFp32, kQuant, kSnc };

/// Parses "fp32" | "quant" | "snc"; throws std::invalid_argument otherwise.
BackendKind parse_backend_kind(const std::string& name);
const char* backend_kind_name(BackendKind kind);

/// Per-image input shape [C, H, W] of a model-zoo architecture name
/// (lenet[-mini] | alexnet[-mini] | resnet[-mini]); throws on unknown.
nn::Shape architecture_input_shape(const std::string& architecture);

/// Splits "base[@version]" into {base, version} (version "" when bare).
/// Purely lexical: "lenet@v2" -> {"lenet", "v2"}, "lenet" -> {"lenet", ""}.
std::pair<std::string, std::string> split_versioned_name(
    const std::string& name);

/// The base half of a possibly-versioned model name ("lenet@v2" ->
/// "lenet") — what routing hashes and input-shape lookups key on, so a
/// version flip never moves a sticky session.
std::string base_model_name(const std::string& name);

/// Lifecycle state of one registered version (see header comment).
enum class VersionState : uint8_t {
  kActive = 0,
  kStandby = 1,
  kShadow = 2,
  kQuarantined = 3,
};

const char* version_state_name(VersionState state);

struct ModelConfig {
  /// Model-zoo architecture: lenet[-mini] | alexnet[-mini] | resnet[-mini].
  std::string architecture = "lenet-mini";
  /// Shard-pool width: the registry builds this many independent
  /// network+backend instances from the same seed/checkpoint, and
  /// ServeCore runs one batcher lane per shard. Shards are bit-identical
  /// by construction, so which lane serves a request is unobservable in
  /// the prediction. Must be >= 1.
  int shards = 1;
  /// Optional nn::save_state checkpoint to restore; empty serves the
  /// deterministic fresh initialization from `init_seed` (useful for load
  /// tests and demos — predictions are still reproducible).
  std::string state_path;
  BackendKind backend = BackendKind::kFp32;
  /// Signal bits (quant, snc) and weight bits (snc).
  int bits = 4;
  uint64_t init_seed = 1;
  /// SncSystem replica count for the snc backend; <= 0 uses the thread
  /// pool size.
  int snc_replicas = 0;
  /// Run the snc backend on the dense reference engine instead of the
  /// event-driven one (bit-identical outputs; used by equivalence benches
  /// to measure what zero-skipping buys end to end).
  bool snc_dense_reference = false;
  /// Serve each micro-batch window through the batch-native engine on one
  /// replica (bit-identical predictions, panels streamed once per
  /// window). Off restores the per-image replica fan-out; deployments
  /// with snc_health.per_replica_seeds always fan out regardless, since
  /// per-replica fault diversity requires spraying images across the
  /// differently-seeded replicas.
  bool snc_batch_native = true;

  // --- snc device non-idealities + fault recovery ----------------------
  /// Programming-variation / stuck-fault rates injected into every
  /// replica's devices (0 = ideal devices, the historical behavior).
  double snc_variation_sigma = 0.0;
  double snc_stuck_on_rate = 0.0;
  double snc_stuck_off_rate = 0.0;
  /// Closed-loop write-verify programming with differential compensation.
  bool snc_write_verify = false;
  /// Spare columns per crossbar for fault-aware remapping.
  int64_t snc_spare_cols = 0;
  /// Master seed for device draws (per-replica streams when
  /// snc_health.per_replica_seeds is set).
  uint64_t snc_seed = 7;
  /// Replica canary / quarantine / quant-fallback monitoring.
  ReplicaHealthConfig snc_health;
};

class ModelRegistry {
 public:
  ModelRegistry();
  ~ModelRegistry();
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Builds and registers a model under `name` ("base[@version]"). For
  /// kQuant the network gets a signal quantizer; for kSnc it is
  /// BN-folded, weight-clustered to the N-bit grid, and programmed into
  /// SncSystem replicas. The first version registered for a base becomes
  /// its active version; later ones register standby. Throws
  /// std::invalid_argument on duplicate names (versions are immutable
  /// once registered), unknown architectures, or checkpoint/shape
  /// mismatches.
  Backend& add(const std::string& name, const ModelConfig& config);

  /// add() with the checkpoint supplied as an in-memory save_state image
  /// instead of config.state_path (the socket hot-load path). The entry
  /// is fully built — magic/version/CRC validated, every shard restored
  /// and programmed — before anything registers, so a corrupt or
  /// truncated image throws (std::runtime_error with the CRC / version /
  /// decode reason) and leaves the registry untouched; a model is never
  /// half-registered.
  Backend& add_from_bytes(const std::string& name,
                          const ModelConfig& config,
                          const std::vector<uint8_t>& state_bytes);

  /// Maps a request's model name to a registry key: an explicit
  /// "base@version" returns itself when registered, a bare name returns
  /// the base's active version's key. Returns "" when nothing matches —
  /// this is the non-throwing lookup the serving hot path uses.
  std::string resolve(const std::string& name) const;

  /// Flips `base`'s active-version pointer to registered entry `key`
  /// (which must belong to `base` and not be quarantined). The previous
  /// active version demotes to kStandby. Throws std::invalid_argument on
  /// a bad base/key.
  void set_active(const std::string& base, const std::string& key);

  /// Lifecycle state of one registered version (rollout controller
  /// transitions; set_state refuses to create or remove kActive — that
  /// is set_active's job). Throws on unknown keys.
  VersionState state(const std::string& key) const;
  void set_state(const std::string& key, VersionState state);

  /// Active version key for `base` ("" when the base is unknown).
  std::string active_key(const std::string& base) const;

  /// One (base, active version) label per base — the health-ack payload
  /// that tells the router tier which version answers bare-name traffic.
  std::vector<ModelVersionLabel> active_versions() const;

  bool contains(const std::string& name) const;

  /// Accessors resolve through resolve(): bare names hit the active
  /// version, explicit "base@version" names pin that entry. Throw
  /// std::invalid_argument when nothing matches. The one-argument
  /// backend() form is shard 0 (the pre-shard API).
  Backend& backend(const std::string& name) const;
  Backend& backend(const std::string& name, size_t shard) const;
  size_t num_shards(const std::string& name) const;
  const ModelConfig& config(const std::string& name) const;
  const nn::Shape& input_shape(const std::string& name) const;

  /// Registered keys, in map order.
  std::vector<std::string> names() const;

 private:
  struct Entry;
  std::unique_ptr<Entry> build_entry(const std::string& name,
                                     const ModelConfig& config,
                                     const std::vector<uint8_t>* state_bytes);
  Backend& insert_entry(const std::string& name,
                        std::unique_ptr<Entry> entry);
  const Entry& entry(const std::string& name) const;  // callers hold mu_
  std::string resolve_locked(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::map<std::string, std::string> active_;  // base -> entry key
};

}  // namespace qsnc::serve
