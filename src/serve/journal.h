// Durable state journal of a serving node: crash-recoverable model
// lifecycle.
//
// Every state transition a server would otherwise lose with its process
// — hot-loaded versions (kLoadVersion), rollout promotions and
// rollbacks, replica quarantines — is appended to a CRC-32-protected
// append-only file before the transition is acknowledged. On restart the
// server replays the journal and reconciles its ModelRegistry back to
// the pre-crash active versions, so a supervisor-restarted node answers
// with the same base@version entries (bit-exact) as before the crash.
//
// File format (all integers little-endian, the nn/serialize v2 container
// idiom applied to a record stream):
//
//   header:  8-byte magic "QSNCJRNL" | u32 format version (1)
//   record:  u32 body_len | u32 crc32(body) | body
//   body:    u8 type | u64 seq | payload[...]
//
// Payloads per record type:
//
//   kLoadVersion       — u16 name_len | name | u16 arch_len | arch |
//                        u16 backend_len | backend | u8 bits |
//                        u64 init_seed | u64 state_len | state bytes
//                        (the full checkpoint image, so replay rebuilds
//                        the identical entry)
//   kPromote           — u16 base_len | base | u16 key_len | key
//   kRollback          — u16 key_len | key | u16 reason_len | reason
//   kReplicaQuarantine — u16 model_len | model | u32 replica |
//                        u16 reason_len | reason
//
// Torn-tail discipline: a crash mid-append leaves a truncated or
// CRC-corrupt final record. replay() stops at the first record that does
// not parse clean and reports the intact prefix — a torn tail is
// *dropped*, never mis-applied — and the reconciler compacts the file so
// the torn bytes are physically gone before new appends land.
//
// Compaction: rewrite-and-rename. compact() writes header + the given
// snapshot records to "<path>.tmp", fsyncs, and rename()s over the live
// path (atomic on POSIX), so a crash during compaction leaves either the
// old journal or the new one, never a hybrid.
//
// Chaos: when a ChaosInjector with journal_torn_rate > 0 is attached,
// append() deterministically truncates a record mid-write (partial CRC /
// partial body) and marks the journal failed — the seeded spelling of
// "the process died holding a half-written record" that the recovery
// tests replay against.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/chaos.h"
#include "serve/protocol.h"

namespace qsnc::serve {

constexpr uint32_t kJournalFormatVersion = 1;

enum class JournalRecordType : uint8_t {
  kLoadVersion = 1,
  kPromote = 2,
  kRollback = 3,
  kReplicaQuarantine = 4,
};

const char* journal_record_type_name(JournalRecordType type);

/// One decoded journal record (payload still encoded; see the per-type
/// decode helpers below).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kLoadVersion;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

/// kPromote payload.
struct JournalPromote {
  std::string base;
  std::string key;
};

/// kRollback payload.
struct JournalRollback {
  std::string key;
  std::string reason;
};

/// kReplicaQuarantine payload.
struct JournalReplicaQuarantine {
  std::string model;
  uint32_t replica = 0;
  std::string reason;
};

// Payload codecs. Decoders throw ProtocolError on truncated or trailing
// bytes (a CRC-clean record with a bad payload is corruption, not a torn
// tail, and the replayer surfaces it as such).
std::vector<uint8_t> encode_journal_load_version(
    const LoadVersionRequest& request);
LoadVersionRequest decode_journal_load_version(
    const std::vector<uint8_t>& payload);
std::vector<uint8_t> encode_journal_promote(const JournalPromote& promote);
JournalPromote decode_journal_promote(const std::vector<uint8_t>& payload);
std::vector<uint8_t> encode_journal_rollback(const JournalRollback& rollback);
JournalRollback decode_journal_rollback(const std::vector<uint8_t>& payload);
std::vector<uint8_t> encode_journal_replica_quarantine(
    const JournalReplicaQuarantine& quarantine);
JournalReplicaQuarantine decode_journal_replica_quarantine(
    const std::vector<uint8_t>& payload);

/// What replay() recovered from a journal file.
struct JournalReplayResult {
  /// Records that parsed clean, in append order.
  std::vector<JournalRecord> records;
  /// Byte length of the intact prefix (header + clean records).
  uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes were dropped (torn/corrupt tail).
  bool tail_dropped = false;
  /// Why the tail was dropped ("" when nothing was dropped).
  std::string tail_reason;
};

/// Append-only journal writer. Thread-safe: appends from the serving hot
/// path (load/promote/rollback run under the rollout or handler locks,
/// but replica quarantines may land concurrently) serialize internally.
class Journal {
 public:
  /// Opens `path` for appending, writing the header when the file is new
  /// or empty. `chaos` (not owned, may be null) supplies the seeded
  /// torn-append fault; it must outlive the journal. Throws
  /// std::runtime_error when the file cannot be opened or the existing
  /// header is not a journal (refusing to append garbage to some other
  /// file).
  explicit Journal(const std::string& path, ChaosInjector* chaos = nullptr);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record (fsynced before returning, so an acknowledged
  /// transition survives the process). Returns false when the journal is
  /// failed — a previous write error or an injected torn append — in
  /// which case nothing more will be written; the server keeps serving
  /// (durability degrades, availability does not).
  bool append(JournalRecordType type, const std::vector<uint8_t>& payload);

  /// Rewrites the journal as header + `snapshot` via "<path>.tmp" +
  /// atomic rename, then reopens for appending. Record seqs are
  /// reassigned contiguously. Returns false (journal marked failed) on
  /// any I/O error.
  bool compact(const std::vector<JournalRecord>& snapshot);

  /// Records appended (not counting compaction rewrites).
  uint64_t appended() const;
  /// True once a write failed or a torn append was injected.
  bool failed() const;
  uint64_t next_seq() const;
  const std::string& path() const { return path_; }

  /// Scans `path`, returning every intact record in order; a
  /// torn/truncated/CRC-corrupt tail is dropped and reported, never
  /// applied. A missing file replays empty (fresh node). Throws
  /// std::runtime_error only when the file exists but its header is not a
  /// journal.
  static JournalReplayResult replay(const std::string& path);

 private:
  bool write_all_locked(const uint8_t* data, size_t size);

  std::string path_;
  ChaosInjector* chaos_;
  mutable std::mutex mu_;
  int fd_ = -1;
  bool failed_ = false;
  uint64_t next_seq_ = 1;
  uint64_t appended_ = 0;
};

}  // namespace qsnc::serve
