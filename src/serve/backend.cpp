#include "serve/backend.h"

#include <cstdlib>
#include <stdexcept>

#include "nn/rng.h"
#include "report/table.h"
#include "util/thread_pool.h"

namespace qsnc::serve {

int64_t check_batch_shape(const nn::Tensor& batch, const nn::Shape& chw) {
  const nn::Shape& s = batch.shape();
  if (s.size() != 4 || s[1] != chw[0] || s[2] != chw[1] || s[3] != chw[2]) {
    throw std::invalid_argument(
        "Backend: batch shape " + nn::shape_to_string(s) +
        " does not match expected [N, " + std::to_string(chw[0]) + ", " +
        std::to_string(chw[1]) + ", " + std::to_string(chw[2]) + "]");
  }
  return s[0];
}

// ---------------------------------------------------------------------------
// Fp32Backend
// ---------------------------------------------------------------------------

Fp32Backend::Fp32Backend(nn::Network& net, nn::Shape input_chw,
                         float input_scale)
    : net_(net), input_chw_(std::move(input_chw)),
      input_scale_(input_scale) {}

std::vector<int64_t> Fp32Backend::infer_batch(const nn::Tensor& batch) {
  check_batch_shape(batch, input_chw_);
  nn::Tensor scaled = batch;
  if (input_scale_ != 1.0f) scaled *= input_scale_;
  return net_.predict(scaled);
}

// ---------------------------------------------------------------------------
// QuantBackend
// ---------------------------------------------------------------------------

QuantBackend::QuantBackend(nn::Network& net, nn::Shape input_chw, int bits)
    : net_(net), input_chw_(std::move(input_chw)), bits_(bits),
      input_scale_(std::min(
          16.0f, static_cast<float>(core::signal_max(bits)))),
      quantizer_(std::make_unique<core::IntegerSignalQuantizer>(bits)) {
  net_.set_signal_quantizer(quantizer_.get());
  const char* env = std::getenv("QSNC_QUANT_INT");
  if (env == nullptr || std::string(env) != "0") {
    engine_ = core::IntQuantEngine::build(net_, input_chw_, bits_);
  }
}

QuantBackend::~QuantBackend() { net_.set_signal_quantizer(nullptr); }

std::vector<int64_t> QuantBackend::infer_batch(const nn::Tensor& batch) {
  check_batch_shape(batch, input_chw_);
  nn::Tensor encoded = batch;
  encoded *= input_scale_;
  for (int64_t i = 0; i < encoded.numel(); ++i) {
    encoded[i] = core::quantize_input_signal(encoded[i], bits_);
  }
  if (engine_ != nullptr) return engine_->predict(encoded);
  return net_.predict(encoded);
}

// ---------------------------------------------------------------------------
// SncBackend
// ---------------------------------------------------------------------------

SncBackend::SncBackend(nn::Network& net, nn::Shape input_chw,
                       const snc::SncConfig& config, int replicas,
                       const ReplicaHealthConfig& health, bool batch_native)
    : net_(net),
      input_chw_(std::move(input_chw)),
      health_(health),
      batch_native_(batch_native) {
  int n = replicas > 0 ? replicas : util::num_threads();
  if (n < 1) n = 1;
  replica_configs_.reserve(static_cast<size_t>(n));
  replicas_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Same network, same config (including the seed): every replica's
    // programmed conductances are identical, so which replica serves an
    // image never changes the prediction. per_replica_seeds opts into
    // independent fault draws instead (see ReplicaHealthConfig).
    snc::SncConfig replica_config = config;
    if (health_.enabled && health_.per_replica_seeds) {
      replica_config.seed =
          nn::Rng::stream_seed(config.seed, static_cast<uint64_t>(i));
    }
    replica_configs_.push_back(replica_config);
    replicas_.push_back(
        std::make_unique<snc::SncSystem>(net, input_chw_, replica_config));
    free_.push_back(replicas_.back().get());
  }
  quarantined_.assign(static_cast<size_t>(n), false);
  reprogram_attempts_.assign(static_cast<size_t>(n), 0);
  health_counters_.enabled = health_.enabled;
  health_counters_.replicas = n;
  health_counters_.healthy = n;

  if (health_.enabled) {
    // Deterministic canary pixels and their known-good predictions from an
    // ideal-device system (no variation, no defects, no recovery) built
    // from the same deployed network.
    nn::Rng canary_rng(health_.canary_seed);
    const int canaries = std::max(1, health_.canary_images);
    for (int i = 0; i < canaries; ++i) {
      nn::Tensor image(input_chw_);
      for (int64_t j = 0; j < image.numel(); ++j) {
        image[j] = canary_rng.uniform();
      }
      canary_.push_back(std::move(image));
    }
    snc::SncConfig ideal = config;
    ideal.device.variation_sigma = 0.0;
    ideal.device.stuck_off_rate = 0.0;
    ideal.device.stuck_on_rate = 0.0;
    ideal.recovery = snc::FaultRecoveryConfig{};
    snc::SncSystem reference(net, input_chw_, ideal);
    canary_reference_ = canary_predictions(reference);
  }
}

std::vector<int64_t> SncBackend::canary_predictions(
    snc::SncSystem& system) const {
  std::vector<int64_t> predictions;
  predictions.reserve(canary_.size());
  for (const nn::Tensor& image : canary_) {
    predictions.push_back(system.infer(image));
  }
  return predictions;
}

snc::SncSystem* SncBackend::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  snc::SncSystem* system = free_.back();
  free_.pop_back();
  return system;
}

void SncBackend::release(snc::SncSystem* system) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(system);
  }
  cv_.notify_one();
}

void SncBackend::rebuild_free_list() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.clear();
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (!quarantined_[i]) free_.push_back(replicas_[i].get());
    }
  }
  cv_.notify_all();
}

void SncBackend::run_health_check() {
  // Runs from the single batcher thread at infer_batch entry, when every
  // replica is guaranteed idle (the previous batch fully released its
  // checkouts before returning). health_mu_ keeps concurrent stats
  // readers away from the unique_ptr swaps a reprogram performs.
  std::lock_guard<std::mutex> health_lock(health_mu_);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (quarantined_[i]) continue;
    ++health_counters_.canary_runs;
    if (canary_predictions(*replicas_[i]) == canary_reference_) continue;

    bool recovered = false;
    while (reprogram_attempts_[i] < health_.max_reprogram_attempts) {
      ++reprogram_attempts_[i];
      ++health_counters_.reprogram_attempts;
      // Reprogram from scratch: same network, same replica config. This
      // clears accumulated drift; deterministic stuck faults re-draw
      // identically, so a fault the write-verify pass cannot absorb leads
      // to quarantine below.
      replicas_[i] = std::make_unique<snc::SncSystem>(
          net_, input_chw_, replica_configs_[i]);
      ++health_counters_.canary_runs;
      if (canary_predictions(*replicas_[i]) == canary_reference_) {
        ++health_counters_.recoveries;
        recovered = true;
        break;
      }
    }
    if (!recovered) {
      quarantined_[i] = true;
      ++health_counters_.quarantine_events;
      if (quarantine_hook_) {
        quarantine_hook_(i, "canary deviation persisted after " +
                                std::to_string(reprogram_attempts_[i]) +
                                " reprogram attempt(s)");
      }
    }
  }
  health_counters_.quarantined = 0;
  for (size_t i = 0; i < quarantined_.size(); ++i) {
    if (quarantined_[i]) ++health_counters_.quarantined;
  }
  health_counters_.healthy =
      health_counters_.replicas - health_counters_.quarantined;
  rebuild_free_list();
}

std::vector<int64_t> SncBackend::infer_fallback(const nn::Tensor& batch) {
  if (!fallback_) {
    fallback_ = std::make_unique<QuantBackend>(
        net_, input_chw_, replica_configs_.front().signal_bits);
  }
  return fallback_->infer_batch(batch);
}

std::vector<int64_t> SncBackend::infer_batch(const nn::Tensor& batch) {
  if (health_.enabled) {
    if (batches_since_check_ <= 0) {
      run_health_check();
      batches_since_check_ = std::max(1, health_.check_interval_batches);
    }
    --batches_since_check_;
    const auto healthy = static_cast<double>(health_counters_.healthy);
    const auto total = static_cast<double>(health_counters_.replicas);
    if (health_counters_.healthy == 0 ||
        healthy / total < health_.min_healthy_fraction) {
      // Degradation ladder: too few trustworthy replicas left — serve the
      // batch from the quant path over the same deployed network and flag
      // it, rather than blocking on an empty (or untrusted) pool.
      last_degraded_ = true;
      {
        std::lock_guard<std::mutex> health_lock(health_mu_);
        ++health_counters_.degraded_batches;
      }
      return infer_fallback(batch);
    }
  }
  last_degraded_ = false;
  const int64_t n = check_batch_shape(batch, input_chw_);
  if (batch_native_ && !(health_.enabled && health_.per_replica_seeds)) {
    // Batch-native serving: the whole micro-batch window runs on ONE
    // replica through the union-event batched engine, so each stage's
    // conductance panel is streamed once per window instead of once per
    // image. Predictions and per-image stats are bit-identical to the
    // fan-out path below. Fault-diversity deployments (per_replica_seeds)
    // keep the fan-out: their replicas are intentionally non-identical,
    // and spraying images across them is the feature.
    snc::SncSystem* system = acquire();
    std::vector<snc::SncStats> stats;
    std::vector<int64_t> predictions;
    try {
      predictions = system->infer_batch(batch, &stats);
    } catch (...) {
      release(system);
      throw;
    }
    release(system);
    // Fold stats image by image: a batched window contributes B images of
    // input_events/spikes/occupied_slots, keeping the activity report's
    // per-image averages comparable with single-image serving.
    for (const snc::SncStats& s : stats) fold_stats(s);
    return predictions;
  }
  const int64_t image_numel =
      input_chw_[0] * input_chw_[1] * input_chw_[2];
  std::vector<int64_t> predictions(static_cast<size_t>(n), -1);
  util::parallel_for(0, n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      nn::Tensor image(input_chw_);
      const float* src = batch.data() + i * image_numel;
      std::copy(src, src + image_numel, image.data());
      snc::SncSystem* system = acquire();
      snc::SncStats stats;
      try {
        predictions[static_cast<size_t>(i)] = system->infer(image, &stats);
      } catch (...) {
        release(system);
        throw;
      }
      release(system);
      fold_stats(stats);
    }
  });
  return predictions;
}

void SncBackend::fold_stats(const snc::SncStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (totals_.stage.size() < stats.stage.size()) {
    totals_.stage.resize(stats.stage.size());
  }
  totals_.total_spikes += stats.total_spikes;
  totals_.window_slots = stats.window_slots;
  totals_.layers = stats.layers;
  for (size_t s = 0; s < stats.stage.size(); ++s) {
    snc::SncStageStats& acc = totals_.stage[s];
    const snc::SncStageStats& st = stats.stage[s];
    acc.rows = st.rows;
    acc.cols = st.cols;
    acc.positions += st.positions;
    acc.input_events += st.input_events;
    acc.spikes += st.spikes;
    acc.occupied_slots += st.occupied_slots;
    // Programming-time facts, constant per inference: assign, not sum.
    acc.write_retries = st.write_retries;
    acc.faults_detected = st.faults_detected;
    acc.faults_compensated = st.faults_compensated;
    acc.residual_faults = st.residual_faults;
    acc.remapped_cols = st.remapped_cols;
    acc.refreshes = st.refreshes;
  }
  ++stat_images_;
}

ReplicaHealthSnapshot SncBackend::health_snapshot() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_counters_;
}

snc::SncStats SncBackend::activity_totals(int64_t* images) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (images != nullptr) *images = stat_images_;
  return totals_;
}

std::string SncBackend::activity_report() const {
  int64_t images = 0;
  const snc::SncStats totals = activity_totals(&images);
  std::string out;
  if (images > 0) {
    report::Table table({"stage", "rows", "cols", "events/img", "sparsity",
                         "spikes/img"});
    const double inv = 1.0 / static_cast<double>(images);
    for (size_t s = 0; s < totals.stage.size(); ++s) {
      const snc::SncStageStats& st = totals.stage[s];
      table.add_row(
          {std::to_string(s), std::to_string(st.rows),
           std::to_string(st.cols),
           report::fmt(static_cast<double>(st.input_events) * inv, 1),
           report::pct(st.input_sparsity(), 1),
           report::fmt(static_cast<double>(st.spikes) * inv, 1)});
    }
    out = table.to_string();
  }

  // Fault-recovery + replica-health appendix. health_mu_ also fences the
  // replica unique_ptrs against a concurrent reprogram swap.
  std::lock_guard<std::mutex> lock(health_mu_);
  snc::FaultReport faults;
  for (const auto& replica : replicas_) {
    faults.add(replica->fault_report());
  }
  if (faults.cells > 0) {
    report::Table ft({"cells", "retries", "detected", "compensated",
                      "residual", "remapped", "spares left", "refreshes"});
    ft.add_row({std::to_string(faults.cells),
                std::to_string(faults.write_retries),
                std::to_string(faults.faults_detected),
                std::to_string(faults.faults_compensated),
                std::to_string(faults.residual_faults),
                std::to_string(faults.remapped_cols),
                std::to_string(faults.spare_cols_left),
                std::to_string(faults.refreshes)});
    if (!out.empty()) out += "\n";
    out += "fault recovery (all replicas):\n" + ft.to_string();
  }
  if (health_counters_.enabled) {
    const ReplicaHealthSnapshot& h = health_counters_;
    report::Table ht({"replicas", "healthy", "quarantined", "canaries",
                      "reprograms", "recoveries", "degraded batches"});
    ht.add_row({std::to_string(h.replicas), std::to_string(h.healthy),
                std::to_string(h.quarantined),
                std::to_string(h.canary_runs),
                std::to_string(h.reprogram_attempts),
                std::to_string(h.recoveries),
                std::to_string(h.degraded_batches)});
    if (!out.empty()) out += "\n";
    out += "replica health:\n" + ht.to_string();
  }
  return out;
}

}  // namespace qsnc::serve
