#include "serve/backend.h"

#include <stdexcept>

#include "report/table.h"
#include "util/thread_pool.h"

namespace qsnc::serve {

int64_t check_batch_shape(const nn::Tensor& batch, const nn::Shape& chw) {
  const nn::Shape& s = batch.shape();
  if (s.size() != 4 || s[1] != chw[0] || s[2] != chw[1] || s[3] != chw[2]) {
    throw std::invalid_argument(
        "Backend: batch shape " + nn::shape_to_string(s) +
        " does not match expected [N, " + std::to_string(chw[0]) + ", " +
        std::to_string(chw[1]) + ", " + std::to_string(chw[2]) + "]");
  }
  return s[0];
}

// ---------------------------------------------------------------------------
// Fp32Backend
// ---------------------------------------------------------------------------

Fp32Backend::Fp32Backend(nn::Network& net, nn::Shape input_chw,
                         float input_scale)
    : net_(net), input_chw_(std::move(input_chw)),
      input_scale_(input_scale) {}

std::vector<int64_t> Fp32Backend::infer_batch(const nn::Tensor& batch) {
  check_batch_shape(batch, input_chw_);
  nn::Tensor scaled = batch;
  if (input_scale_ != 1.0f) scaled *= input_scale_;
  return net_.predict(scaled);
}

// ---------------------------------------------------------------------------
// QuantBackend
// ---------------------------------------------------------------------------

QuantBackend::QuantBackend(nn::Network& net, nn::Shape input_chw, int bits)
    : net_(net), input_chw_(std::move(input_chw)), bits_(bits),
      input_scale_(std::min(
          16.0f, static_cast<float>(core::signal_max(bits)))),
      quantizer_(std::make_unique<core::IntegerSignalQuantizer>(bits)) {
  net_.set_signal_quantizer(quantizer_.get());
}

QuantBackend::~QuantBackend() { net_.set_signal_quantizer(nullptr); }

std::vector<int64_t> QuantBackend::infer_batch(const nn::Tensor& batch) {
  check_batch_shape(batch, input_chw_);
  nn::Tensor encoded = batch;
  encoded *= input_scale_;
  for (int64_t i = 0; i < encoded.numel(); ++i) {
    encoded[i] = core::quantize_input_signal(encoded[i], bits_);
  }
  return net_.predict(encoded);
}

// ---------------------------------------------------------------------------
// SncBackend
// ---------------------------------------------------------------------------

SncBackend::SncBackend(nn::Network& net, nn::Shape input_chw,
                       const snc::SncConfig& config, int replicas)
    : input_chw_(std::move(input_chw)) {
  int n = replicas > 0 ? replicas : util::num_threads();
  if (n < 1) n = 1;
  replicas_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Same network, same config (including the seed): every replica's
    // programmed conductances are identical, so which replica serves an
    // image never changes the prediction.
    replicas_.push_back(
        std::make_unique<snc::SncSystem>(net, input_chw_, config));
    free_.push_back(replicas_.back().get());
  }
}

snc::SncSystem* SncBackend::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  snc::SncSystem* system = free_.back();
  free_.pop_back();
  return system;
}

void SncBackend::release(snc::SncSystem* system) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(system);
  }
  cv_.notify_one();
}

std::vector<int64_t> SncBackend::infer_batch(const nn::Tensor& batch) {
  const int64_t n = check_batch_shape(batch, input_chw_);
  const int64_t image_numel =
      input_chw_[0] * input_chw_[1] * input_chw_[2];
  std::vector<int64_t> predictions(static_cast<size_t>(n), -1);
  util::parallel_for(0, n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      nn::Tensor image(input_chw_);
      const float* src = batch.data() + i * image_numel;
      std::copy(src, src + image_numel, image.data());
      snc::SncSystem* system = acquire();
      snc::SncStats stats;
      try {
        predictions[static_cast<size_t>(i)] = system->infer(image, &stats);
      } catch (...) {
        release(system);
        throw;
      }
      release(system);
      fold_stats(stats);
    }
  });
  return predictions;
}

void SncBackend::fold_stats(const snc::SncStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (totals_.stage.size() < stats.stage.size()) {
    totals_.stage.resize(stats.stage.size());
  }
  totals_.total_spikes += stats.total_spikes;
  totals_.window_slots = stats.window_slots;
  totals_.layers = stats.layers;
  for (size_t s = 0; s < stats.stage.size(); ++s) {
    snc::SncStageStats& acc = totals_.stage[s];
    const snc::SncStageStats& st = stats.stage[s];
    acc.rows = st.rows;
    acc.cols = st.cols;
    acc.positions += st.positions;
    acc.input_events += st.input_events;
    acc.spikes += st.spikes;
    acc.occupied_slots += st.occupied_slots;
  }
  ++stat_images_;
}

snc::SncStats SncBackend::activity_totals(int64_t* images) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (images != nullptr) *images = stat_images_;
  return totals_;
}

std::string SncBackend::activity_report() const {
  int64_t images = 0;
  const snc::SncStats totals = activity_totals(&images);
  if (images == 0) return std::string();
  report::Table table({"stage", "rows", "cols", "events/img", "sparsity",
                       "spikes/img"});
  const double inv = 1.0 / static_cast<double>(images);
  for (size_t s = 0; s < totals.stage.size(); ++s) {
    const snc::SncStageStats& st = totals.stage[s];
    table.add_row({std::to_string(s), std::to_string(st.rows),
                   std::to_string(st.cols),
                   report::fmt(static_cast<double>(st.input_events) * inv, 1),
                   report::pct(st.input_sparsity(), 1),
                   report::fmt(static_cast<double>(st.spikes) * inv, 1)});
  }
  return table.to_string();
}

}  // namespace qsnc::serve
