#include "serve/admission.h"

#include <algorithm>
#include <stdexcept>

namespace qsnc::serve {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kBatch: return "batch";
    case Priority::kCanary: return "canary";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

Priority parse_priority(const std::string& name) {
  if (name == "batch") return Priority::kBatch;
  if (name == "canary") return Priority::kCanary;
  if (name == "interactive") return Priority::kInteractive;
  throw std::invalid_argument("unknown priority '" + name +
                              "' (batch|canary|interactive)");
}

CircuitBreaker::CircuitBreaker(int threshold, int64_t open_us)
    : threshold_(threshold), open_us_(open_us) {
  if (threshold > 0 && open_us <= 0) {
    throw std::invalid_argument(
        "CircuitBreaker: breaker_open_us must be > 0 when enabled");
  }
}

bool CircuitBreaker::allow(int64_t now_us) {
  if (threshold_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ < open_us_) return false;
      state_ = State::kHalfOpen;
      probe_inflight_ = true;  // this caller is the probe
      return true;
    case State::kHalfOpen:
      if (probe_inflight_) return false;  // one probe at a time
      probe_inflight_ = true;
      return true;
  }
  return true;
}

bool CircuitBreaker::would_allow(int64_t now_us) const {
  if (threshold_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return now_us - opened_at_us_ >= open_us_;
    case State::kHalfOpen:
      return !probe_inflight_;
  }
  return true;
}

void CircuitBreaker::on_success() {
  if (threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
}

void CircuitBreaker::on_failure(int64_t now_us) {
  if (threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen || consecutive_failures_ >= threshold_) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    probe_inflight_ = false;
  }
}

void CircuitBreaker::release_probe() {
  if (threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) probe_inflight_ = false;
}

void CircuitBreaker::reset() {
  if (threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_inflight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::retry_after_us(int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) return 0;
  return std::max<int64_t>(0, open_us_ - (now_us - opened_at_us_));
}

void select_sheds(const int64_t depths[kNumPriorities], int64_t allowed,
                  int64_t sheds[kNumPriorities]) {
  int64_t total = 0;
  for (int c = 0; c < kNumPriorities; ++c) {
    sheds[c] = 0;
    total += depths[c];
  }
  int64_t excess = std::max<int64_t>(0, total - std::max<int64_t>(allowed, 0));
  for (int c = 0; c < kNumPriorities && excess > 0; ++c) {
    sheds[c] = std::min(depths[c], excess);
    excess -= sheds[c];
  }
}

}  // namespace qsnc::serve
