#include "serve/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace qsnc::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollTickMs = 50;

/// Poll wait for this iteration: the usual tick, clamped so a deadline
/// shorter than the tick is still honored (a hedge trigger of 2ms must
/// not sleep 50ms waiting for the primary).
int poll_wait_ms(Clock::time_point started, int64_t timeout_ms) {
  if (timeout_ms <= 0) return kPollTickMs;
  const int64_t remaining =
      timeout_ms - std::chrono::duration_cast<std::chrono::milliseconds>(
                       Clock::now() - started)
                       .count();
  if (remaining <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(kPollTickMs, remaining));
}

sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_address(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  // Not a dotted quad: resolve the name (e.g. "localhost").
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(endpoint.host.c_str(), nullptr, &hints, &result) != 0 ||
      result == nullptr) {
    throw std::runtime_error("cannot resolve host '" + endpoint.host + "'");
  }
  addr.sin_addr =
      reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string Endpoint::str() const {
  if (kind == EndpointKind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = EndpointKind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec + "': empty path");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "': expected tcp:host:port");
    }
    endpoint.kind = EndpointKind::kTcp;
    endpoint.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    size_t used = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(port_str, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                  port_str + "'");
    }
    if (used != port_str.size() || port > 65535) {
      throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                  port_str + "'");
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  }
  if (!spec.empty() && spec[0] == '/') {
    // Bare path: the historical --socket spelling.
    endpoint.kind = EndpointKind::kUnix;
    endpoint.path = spec;
    return endpoint;
  }
  throw std::invalid_argument(
      "endpoint '" + spec +
      "': expected unix:/path, tcp:host:port, or an absolute path");
}

std::vector<Endpoint> parse_endpoint_list(const std::string& csv) {
  std::vector<Endpoint> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t end = csv.find(',', pos);
    if (end == std::string::npos) end = csv.size();
    out.push_back(parse_endpoint(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("empty endpoint list '" + csv + "'");
  }
  return out;
}

int listen_on(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == EndpointKind::kUnix) {
    const sockaddr_un addr = make_unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    }
    ::unlink(endpoint.path.c_str());  // stale socket from a dead server
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("bind/listen on " + endpoint.str() + ": " +
                               err);
    }
    return fd;
  }
  const sockaddr_in addr = make_tcp_address(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen on " + endpoint.str() + ": " +
                             err);
  }
  return fd;
}

Endpoint local_endpoint(int listen_fd, const Endpoint& requested) {
  if (requested.kind == EndpointKind::kUnix) return requested;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  Endpoint out = requested;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    out.port = ntohs(addr.sin_port);
  }
  return out;
}

int connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == EndpointKind::kUnix) {
    const sockaddr_un addr = make_unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("socket: ") +
                               std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw std::runtime_error("connect to " + endpoint.str() + ": " + err);
    }
    return fd;
  }
  const sockaddr_in addr = make_tcp_address(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect to " + endpoint.str() + ": " + err);
  }
  set_nodelay(fd);
  return fd;
}

bool write_with_deadline(int fd, const std::vector<uint8_t>& bytes,
                         int64_t timeout_ms) {
  const Clock::time_point started = Clock::now();
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      return false;  // peer gone
    }
    if (timeout_ms > 0 &&
        Clock::now() - started >= std::chrono::milliseconds(timeout_ms)) {
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    ::poll(&pfd, 1, poll_wait_ms(started, timeout_ms));
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) return false;
  }
  return true;
}

std::optional<Frame> read_frame_with_deadline(int fd, FrameReader& reader,
                                              int64_t timeout_ms) {
  const Clock::time_point started = Clock::now();
  uint8_t buf[64 * 1024];
  for (;;) {
    if (auto frame = reader.next()) return frame;
    if (timeout_ms > 0 &&
        Clock::now() - started >= std::chrono::milliseconds(timeout_ms)) {
      return std::nullopt;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_wait_ms(started, timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return std::nullopt;  // EOF
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return std::nullopt;
    }
    reader.feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace qsnc::serve
