#include "serve/metrics.h"

#include <algorithm>
#include <cstring>

#include "report/table.h"

namespace qsnc::serve {

LatencyHistogram::LatencyHistogram() {
  std::memset(buckets_, 0, sizeof(buckets_));
}

int LatencyHistogram::bucket_of(uint64_t micros) {
  // Bucket i holds samples in [2^i, 2^{i+1}) us; bucket 0 also takes 0.
  int b = 0;
  while (micros > 1 && b < kBuckets - 1) {
    micros >>= 1;
    ++b;
  }
  return b;
}

void LatencyHistogram::record(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket_of(micros)];
  ++count_;
  max_us_ = std::max(max_us_, micros);
  sum_us_ += static_cast<double>(micros);
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t LatencyHistogram::max_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_us_;
}

double LatencyHistogram::mean_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
}

uint64_t LatencyHistogram::percentile_us(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const uint64_t before = seen;
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      // Linear interpolation inside [lo, hi) by rank; clamp to max_us_ so
      // the top bucket does not report far beyond any observed sample.
      const uint64_t lo = b == 0 ? 0 : (uint64_t{1} << b);
      const uint64_t hi = uint64_t{1} << (b + 1);
      const double frac =
          (target - static_cast<double>(before)) /
          static_cast<double>(buckets_[b]);
      const uint64_t v =
          lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::min(v, max_us_);
    }
  }
  return max_us_;
}

void ModelMetrics::on_complete(uint64_t latency_us) {
  latency_.record(latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  const Clock::time_point now = Clock::now();
  if (!saw_first_) {
    saw_first_ = true;
    first_ = now;
  }
  last_ = now;
}

void ModelMetrics::on_reject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ModelMetrics::on_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++errors_;
}

void ModelMetrics::on_deadline_exceeded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_exceeded_;
}

void ModelMetrics::on_degraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++degraded_;
}

void ModelMetrics::on_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++shed_;
}

void ModelMetrics::on_breaker_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++breaker_shed_;
}

void ModelMetrics::on_batch(size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  (void)batch_size;
}

ModelStatsSnapshot ModelMetrics::snapshot() const {
  ModelStatsSnapshot s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.completed = completed_;
    s.rejected = rejected_;
    s.errors = errors_;
    s.deadline_exceeded = deadline_exceeded_;
    s.degraded = degraded_;
    s.shed = shed_;
    s.breaker_shed = breaker_shed_;
    s.batches = batches_;
    s.mean_batch = batches_ > 0 ? static_cast<double>(completed_) /
                                      static_cast<double>(batches_)
                                : 0.0;
    if (saw_first_ && last_ > first_) {
      const double secs =
          std::chrono::duration<double>(last_ - first_).count();
      s.qps = secs > 0.0 ? static_cast<double>(completed_) / secs : 0.0;
    }
  }
  s.p50_us = latency_.percentile_us(50.0);
  s.p95_us = latency_.percentile_us(95.0);
  s.p99_us = latency_.percentile_us(99.0);
  s.max_us = latency_.max_us();
  s.mean_us = latency_.mean_us();
  return s;
}

std::string render_stats(const std::vector<ModelStatsSnapshot>& stats) {
  report::Table t({"model", "backend", "ok", "rej", "err", "ddl", "degr",
                   "shed", "brk", "batches", "avg batch", "QPS", "p50 us",
                   "p95 us", "p99 us", "max us", "queue"});
  for (const ModelStatsSnapshot& s : stats) {
    t.add_row({s.model, s.backend, std::to_string(s.completed),
               std::to_string(s.rejected), std::to_string(s.errors),
               std::to_string(s.deadline_exceeded),
               std::to_string(s.degraded), std::to_string(s.shed),
               std::to_string(s.breaker_shed),
               std::to_string(s.batches), report::fmt(s.mean_batch, 2),
               report::fmt(s.qps, 1), std::to_string(s.p50_us),
               std::to_string(s.p95_us), std::to_string(s.p99_us),
               std::to_string(s.max_us), std::to_string(s.queue_depth)});
  }
  return t.to_string();
}

}  // namespace qsnc::serve
