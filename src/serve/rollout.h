// Blue/green rollout controller: shadow-compare a candidate model
// version against the live one, then promote or roll back.
//
//   load (registry.add_from_bytes)  -->  kStandby
//   begin()                         -->  kShadow: a slice of the base's
//         live traffic (always the kCanary priority class, plus
//         shadow_fraction of the rest) is duplicated to green; the
//         client is answered from blue as always, and the controller
//         compares the two predictions off the hot path. A deterministic
//         canary battery (the replica-health idiom: fixed images from
//         nn::Rng(canary_seed)) runs against both versions every
//         canary_interval_ms as a second, traffic-independent signal.
//   auto-promote                    -->  compared >= observe_requests,
//         canary_rounds clean battery passes, and divergence within
//         max_divergence: the registry's active pointer flips to green
//         and blue demotes to standby. In-flight requests finish on the
//         version they were admitted to (each version has its own
//         batcher lanes), so a flip never drops or reroutes a request.
//   auto-rollback                   -->  any canary divergence, or
//         shadow divergence above max_divergence once
//         min_compared_for_rollback pairs exist: green quarantines with
//         a structured reason and blue keeps serving, untouched.
//
// Operators override with promote()/rollback() (protocol v5 kPromote /
// kRollback); double-promotes and rollback-after-promote are rejected
// with structured errors. One rollout runs at a time; a finished one
// (promoted or rolled back) leaves its report readable until the next
// begin().
//
// Client-latency discipline: shadowing adds one promise hop, never a
// wait on green — the comparator fulfills the client's future the
// moment blue's result lands, then waits for green to compare. A full
// compare queue skips shadowing (counted) rather than blocking the
// submit path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nn/tensor.h"
#include "serve/micro_batcher.h"
#include "serve/protocol.h"

namespace qsnc::serve {

class ServeCore;

struct RolloutOptions {
  /// Fraction of non-canary blue traffic duplicated to green while
  /// shadowing (deterministic fixed-point sampling, no RNG). 1.0 shadows
  /// everything.
  double shadow_fraction = 0.25;
  /// kCanary-class requests always shadow (the priority class exists to
  /// probe — see serve/admission.h).
  bool shadow_all_canary = true;
  /// Compared prediction pairs required before an auto-promote.
  int observe_requests = 32;
  /// diverged/compared above this ratio rolls back (0 = any divergence).
  double max_divergence = 0.0;
  /// Don't judge the divergence ratio before this many comparisons.
  int min_compared_for_rollback = 8;
  /// Clean canary-battery passes required before an auto-promote.
  int canary_rounds = 1;
  int canary_images = 4;
  uint64_t canary_seed = 0x5ca7ab1e;
  int64_t canary_interval_ms = 20;
  /// Off = observation only; promote/rollback wait for the operator.
  bool auto_decide = true;
  /// Bounded comparator queue; a full queue skips shadowing (counted in
  /// the report) instead of blocking the submit path.
  int compare_queue_capacity = 256;
};

enum class RolloutState : uint8_t {
  kIdle = 0,        // no rollout has run
  kShadow = 1,      // green mirroring traffic, decision pending
  kPromoted = 2,    // green is the active version now
  kRolledBack = 3,  // green quarantined, blue kept
};

const char* rollout_state_name(RolloutState state);

/// Point-in-time rollout counters (the structured report behind
/// kRolloutStatus and the serve stats appendix).
struct RolloutReport {
  RolloutState state = RolloutState::kIdle;
  std::string base;
  std::string blue;   // active version when the rollout began
  std::string green;  // candidate version
  uint64_t compared = 0;      // pairs where both predictions were kOk
  uint64_t agreed = 0;
  uint64_t diverged = 0;
  uint64_t incomparable = 0;  // pairs with a non-kOk side (not divergence)
  uint64_t shadow_skipped = 0;  // sampled out or comparator queue full
  uint64_t canary_rounds_ok = 0;
  uint64_t canary_diverged = 0;
  std::string reason;  // decision reason (promote/rollback)
};

class RolloutController {
 public:
  /// `core` must outlive the controller. The worker thread starts idle
  /// and only ticks while a rollout is shadowing.
  RolloutController(ServeCore& core, const RolloutOptions& options);
  ~RolloutController();  // drains
  RolloutController(const RolloutController&) = delete;
  RolloutController& operator=(const RolloutController&) = delete;

  /// Starts shadowing `green_key` (a registered standby version) against
  /// its base's active version. Structured failure (ok=false) when a
  /// rollout is already shadowing, the key is unknown/active/quarantined,
  /// or the input shapes disagree.
  RolloutReply begin(const std::string& green_key);

  /// Operator overrides. `name` may be the green key, the base, or empty
  /// (the current rollout); anything else is a structured error, as are
  /// double-promotes and rollback-after-promote.
  RolloutReply promote(const std::string& name);
  RolloutReply rollback(const std::string& name, const std::string& reason);

  /// Shadow hook on the serving hot path: when `resolved_key` is the
  /// shadowed blue version and the sampler takes this request, submits
  /// to both versions and returns the client future (fulfilled from
  /// blue). Returns nullopt — leaving `image` untouched — when not
  /// shadowing, so the caller submits normally.
  std::optional<std::future<Response>> maybe_shadow(
      const std::string& resolved_key, nn::Tensor& image,
      uint64_t deadline_us, Priority priority);

  RolloutReport report() const;
  /// Rendered report ("" while kIdle) for kRolloutStatus and the stats
  /// appendix. `name` filters by base or green key; empty matches.
  std::string status_text(const std::string& name = std::string()) const;

  /// Stops the worker after fulfilling every queued client promise.
  /// Idempotent; called by ServeCore::drain.
  void drain();

 private:
  struct CompareJob {
    std::promise<Response> client;
    std::future<Response> blue;
    std::future<Response> green;
  };

  void loop();
  void process_job(CompareJob& job);
  void run_canary_round(const std::string& blue_key,
                        const std::string& green_key);
  /// Auto promote/rollback once the evidence is in. Callers hold mu_.
  void evaluate_locked();
  void promote_locked(const std::string& reason);
  void rollback_locked(const std::string& reason);
  bool sample_shadow(Priority priority);
  RolloutReport report_locked() const;  // callers hold mu_

  ServeCore& core_;
  RolloutOptions options_;

  mutable std::mutex mu_;
  RolloutState state_ = RolloutState::kIdle;
  std::string base_;
  std::string blue_;
  std::string green_;
  std::string reason_;
  uint64_t compared_ = 0;
  uint64_t agreed_ = 0;
  uint64_t diverged_ = 0;
  uint64_t incomparable_ = 0;
  uint64_t shadow_skipped_ = 0;
  uint64_t canary_rounds_ok_ = 0;
  uint64_t canary_diverged_ = 0;

  /// Hot-path gate: one relaxed load decides "no rollout, submit
  /// normally" without touching mu_.
  std::atomic<bool> shadow_active_{false};
  std::atomic<uint64_t> sample_counter_{0};

  std::mutex queue_mu_;
  std::condition_variable cv_;
  std::deque<CompareJob> queue_;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes concurrent drain() calls
  std::thread worker_;
};

}  // namespace qsnc::serve
