#include "serve/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/crc32.h"

namespace qsnc::serve {

namespace {

constexpr char kJournalMagic[8] = {'Q', 'S', 'N', 'C', 'J', 'R', 'N', 'L'};
constexpr size_t kHeaderBytes = sizeof(kJournalMagic) + sizeof(uint32_t);

// Little-endian writers/readers, the protocol.cpp idiom applied to
// journal bodies (protocol.cpp's helpers live in its own anonymous
// namespace, so the journal carries its own copies).
template <typename T>
void put(std::vector<uint8_t>& out, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void put_short_string(std::vector<uint8_t>& out, const std::string& s) {
  if (s.size() > UINT16_MAX) {
    throw ProtocolError("journal: string too long");
  }
  put<uint16_t>(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  const std::vector<uint8_t>& buf;
  size_t at = 0;

  template <typename T>
  T take(const char* what) {
    if (buf.size() - at < sizeof(T)) {
      throw ProtocolError(std::string("journal: truncated ") + what);
    }
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<T>(buf[at + i]) << (8 * i);
    }
    at += sizeof(T);
    return value;
  }

  std::string take_string(size_t n, const char* what) {
    if (buf.size() - at < n) {
      throw ProtocolError(std::string("journal: truncated ") + what);
    }
    std::string s(buf.begin() + static_cast<ptrdiff_t>(at),
                  buf.begin() + static_cast<ptrdiff_t>(at + n));
    at += n;
    return s;
  }

  std::string take_short_string(const char* what) {
    return take_string(take<uint16_t>(what), what);
  }

  void done(const char* what) {
    if (at != buf.size()) {
      throw ProtocolError(std::string("journal: trailing bytes in ") + what);
    }
  }
};

}  // namespace

const char* journal_record_type_name(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kLoadVersion: return "load-version";
    case JournalRecordType::kPromote: return "promote";
    case JournalRecordType::kRollback: return "rollback";
    case JournalRecordType::kReplicaQuarantine: return "replica-quarantine";
  }
  return "?";
}

std::vector<uint8_t> encode_journal_load_version(
    const LoadVersionRequest& request) {
  std::vector<uint8_t> out;
  put_short_string(out, request.name);
  put_short_string(out, request.architecture);
  put_short_string(out, request.backend_kind);
  put<uint8_t>(out, request.bits);
  put<uint64_t>(out, request.init_seed);
  put<uint64_t>(out, request.state.size());
  out.insert(out.end(), request.state.begin(), request.state.end());
  return out;
}

LoadVersionRequest decode_journal_load_version(
    const std::vector<uint8_t>& payload) {
  Cursor cur{payload};
  LoadVersionRequest request;
  request.name = cur.take_short_string("load name");
  request.architecture = cur.take_short_string("load architecture");
  request.backend_kind = cur.take_short_string("load backend");
  request.bits = cur.take<uint8_t>("load bits");
  request.init_seed = cur.take<uint64_t>("load seed");
  const uint64_t state_len = cur.take<uint64_t>("load state length");
  if (payload.size() - cur.at != state_len) {
    throw ProtocolError("journal: load state length mismatch");
  }
  request.state.assign(payload.begin() + static_cast<ptrdiff_t>(cur.at),
                       payload.end());
  return request;
}

std::vector<uint8_t> encode_journal_promote(const JournalPromote& promote) {
  std::vector<uint8_t> out;
  put_short_string(out, promote.base);
  put_short_string(out, promote.key);
  return out;
}

JournalPromote decode_journal_promote(const std::vector<uint8_t>& payload) {
  Cursor cur{payload};
  JournalPromote promote;
  promote.base = cur.take_short_string("promote base");
  promote.key = cur.take_short_string("promote key");
  cur.done("promote");
  return promote;
}

std::vector<uint8_t> encode_journal_rollback(
    const JournalRollback& rollback) {
  std::vector<uint8_t> out;
  put_short_string(out, rollback.key);
  put_short_string(out, rollback.reason);
  return out;
}

JournalRollback decode_journal_rollback(const std::vector<uint8_t>& payload) {
  Cursor cur{payload};
  JournalRollback rollback;
  rollback.key = cur.take_short_string("rollback key");
  rollback.reason = cur.take_short_string("rollback reason");
  cur.done("rollback");
  return rollback;
}

std::vector<uint8_t> encode_journal_replica_quarantine(
    const JournalReplicaQuarantine& quarantine) {
  std::vector<uint8_t> out;
  put_short_string(out, quarantine.model);
  put<uint32_t>(out, quarantine.replica);
  put_short_string(out, quarantine.reason);
  return out;
}

JournalReplicaQuarantine decode_journal_replica_quarantine(
    const std::vector<uint8_t>& payload) {
  Cursor cur{payload};
  JournalReplicaQuarantine quarantine;
  quarantine.model = cur.take_short_string("quarantine model");
  quarantine.replica = cur.take<uint32_t>("quarantine replica");
  quarantine.reason = cur.take_short_string("quarantine reason");
  cur.done("replica quarantine");
  return quarantine;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

namespace {

std::vector<uint8_t> header_bytes() {
  std::vector<uint8_t> out(kJournalMagic, kJournalMagic + 8);
  put<uint32_t>(out, kJournalFormatVersion);
  return out;
}

std::vector<uint8_t> record_bytes(JournalRecordType type, uint64_t seq,
                                  const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> body;
  body.reserve(1 + 8 + payload.size());
  put<uint8_t>(body, static_cast<uint8_t>(type));
  put<uint64_t>(body, seq);
  body.insert(body.end(), payload.begin(), payload.end());
  std::vector<uint8_t> out;
  out.reserve(8 + body.size());
  put<uint32_t>(out, static_cast<uint32_t>(body.size()));
  put<uint32_t>(out, util::crc32(body.data(), body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool valid_record_type(uint8_t type) {
  return type >= static_cast<uint8_t>(JournalRecordType::kLoadVersion) &&
         type <= static_cast<uint8_t>(JournalRecordType::kReplicaQuarantine);
}

}  // namespace

Journal::Journal(const std::string& path, ChaosInjector* chaos)
    : path_(path), chaos_(chaos) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    const std::vector<uint8_t> header = header_bytes();
    if (!write_all_locked(header.data(), header.size())) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: cannot write header to '" + path +
                               "'");
    }
  } else {
    // Appending to an existing file: refuse anything that is not a
    // journal (a mis-typed path must not get records appended to it).
    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kJournalMagic, sizeof(magic)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: '" + path +
                               "' exists but is not a journal file");
    }
    // Resume the seq counter past what is already recorded.
    const JournalReplayResult replayed = replay(path);
    for (const JournalRecord& record : replayed.records) {
      next_seq_ = std::max(next_seq_, record.seq + 1);
    }
  }
}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

bool Journal::write_all_locked(const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool Journal::append(JournalRecordType type,
                     const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || fd_ < 0) return false;
  std::vector<uint8_t> bytes = record_bytes(type, next_seq_, payload);
  if (chaos_ != nullptr) {
    const size_t torn = chaos_->journal_torn_len(bytes.size());
    if (torn > 0) {
      // Injected crash-during-append: only a prefix of the record lands
      // (a partial length/CRC/body, whatever the cut leaves), and the
      // journal is failed from here on — the process "died" mid-write.
      (void)write_all_locked(bytes.data(), torn);
      ::fsync(fd_);
      failed_ = true;
      return false;
    }
  }
  if (!write_all_locked(bytes.data(), bytes.size())) {
    failed_ = true;
    return false;
  }
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return false;
  }
  ++next_seq_;
  ++appended_;
  return true;
}

bool Journal::compact(const std::vector<JournalRecord>& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return false;
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    failed_ = true;
    return false;
  }
  std::vector<uint8_t> bytes = header_bytes();
  uint64_t seq = 1;
  for (const JournalRecord& record : snapshot) {
    const std::vector<uint8_t> rec =
        record_bytes(record.type, seq++, record.payload);
    bytes.insert(bytes.end(), rec.begin(), rec.end());
  }
  size_t written = 0;
  bool ok = true;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(tmp_fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  ok = ok && ::fsync(tmp_fd) == 0;
  ::close(tmp_fd);
  // rename() is atomic: a crash here leaves either the old journal or
  // the fully-written new one, never a hybrid.
  ok = ok && ::rename(tmp.c_str(), path_.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    failed_ = true;
    return false;
  }
  const int new_fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (new_fd < 0) {
    failed_ = true;
    return false;
  }
  ::close(fd_);
  fd_ = new_fd;
  failed_ = false;
  next_seq_ = seq;
  return true;
}

uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

bool Journal::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

uint64_t Journal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

JournalReplayResult Journal::replay(const std::string& path) {
  JournalReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // fresh node: nothing to replay
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (bytes.empty()) return result;
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw std::runtime_error("journal: '" + path +
                             "' is not a journal file (bad magic)");
  }
  uint32_t format = 0;
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    format |= static_cast<uint32_t>(bytes[sizeof(kJournalMagic) + i])
              << (8 * i);
  }
  if (format != kJournalFormatVersion) {
    throw std::runtime_error("journal: '" + path +
                             "' has unsupported format version " +
                             std::to_string(format));
  }
  size_t at = kHeaderBytes;
  result.valid_bytes = at;
  while (at < bytes.size()) {
    // Each failure mode below is a torn tail: stop, report, drop.
    if (bytes.size() - at < 8) {
      result.tail_dropped = true;
      result.tail_reason = "truncated record header at byte " +
                           std::to_string(at);
      break;
    }
    uint32_t body_len = 0;
    uint32_t crc = 0;
    for (size_t i = 0; i < 4; ++i) {
      body_len |= static_cast<uint32_t>(bytes[at + i]) << (8 * i);
      crc |= static_cast<uint32_t>(bytes[at + 4 + i]) << (8 * i);
    }
    if (body_len < 9) {  // type byte + seq at minimum
      result.tail_dropped = true;
      result.tail_reason = "implausible record length " +
                           std::to_string(body_len) + " at byte " +
                           std::to_string(at);
      break;
    }
    if (bytes.size() - at - 8 < body_len) {
      result.tail_dropped = true;
      result.tail_reason = "truncated record body at byte " +
                           std::to_string(at) + " (need " +
                           std::to_string(body_len) + " bytes, have " +
                           std::to_string(bytes.size() - at - 8) + ")";
      break;
    }
    const uint8_t* body = bytes.data() + at + 8;
    if (util::crc32(body, body_len) != crc) {
      result.tail_dropped = true;
      result.tail_reason =
          "CRC mismatch at byte " + std::to_string(at);
      break;
    }
    if (!valid_record_type(body[0])) {
      result.tail_dropped = true;
      result.tail_reason = "unknown record type " +
                           std::to_string(body[0]) + " at byte " +
                           std::to_string(at);
      break;
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(body[0]);
    for (size_t i = 0; i < 8; ++i) {
      record.seq |= static_cast<uint64_t>(body[1 + i]) << (8 * i);
    }
    record.payload.assign(body + 9, body + body_len);
    result.records.push_back(std::move(record));
    at += 8 + body_len;
    result.valid_bytes = at;
  }
  return result;
}

}  // namespace qsnc::serve
