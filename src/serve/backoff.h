// Deterministic exponential backoff for retrying kRejected requests.
//
// The schedule is base_us * multiplier^attempt, capped at max_us, scaled
// by a jitter factor in [0.5, 1.0) derived from SplitMix64 over
// (seed, attempt). Jitter de-synchronizes clients that were rejected by
// the same full queue, so they do not all retry in lockstep; deriving it
// from the seed keeps every schedule reproducible — two clients with the
// same seed sleep the same sequence, which is what the unit tests and
// the deterministic load generator need.
#pragma once

#include <cstdint>

namespace qsnc::serve {

struct BackoffConfig {
  uint64_t base_us = 1000;     ///< delay before the first retry (pre-jitter)
  uint64_t max_us = 100000;    ///< hard cap on any single delay
  double multiplier = 2.0;     ///< exponential growth per attempt
  uint64_t seed = 1;           ///< jitter stream; same seed → same schedule
};

class Backoff {
 public:
  explicit Backoff(const BackoffConfig& config = {});

  /// Delay for the zero-based `attempt`, a pure function of
  /// (config, attempt): jitter * min(base * multiplier^attempt, max).
  uint64_t delay_us(int attempt) const;

  /// Combines the schedule with the server's retry_after_us hint: the
  /// larger of the two, so an overloaded server can slow clients further
  /// but a wild hint can never exceed max_us.
  uint64_t delay_us(int attempt, uint64_t server_hint_us) const;

 private:
  BackoffConfig config_;
};

}  // namespace qsnc::serve
