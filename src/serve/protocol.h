// Length-prefixed binary wire protocol of the serving front-end.
//
// Frame layout (all integers little-endian):
//
//   u32 payload_len | u8 type | payload[payload_len - 1]
//
// i.e. payload_len counts the type byte plus the body. Messages
// (protocol version 5 — v2 added deadline_us/degraded, v3 the request
// priority byte and the kShedded status code, v4 the session key,
// the hello handshake, health probes, and the router-forward frame;
// v5 the model-lifecycle control frames and the health-ack version
// labels):
//
//   kInferRequest  (1): u64 id | u64 deadline_us | u8 priority |
//                       u16 session_len | session bytes |
//                       u16 model_len | model bytes | u8 rank |
//                       u32 dim[rank] | f32 data[numel]
//   kInferResponse (2): u64 id | u8 status | u8 degraded |
//                       i64 prediction | u64 latency_us |
//                       u64 retry_after_us | u32 batch_size |
//                       u16 error_len | error bytes
//   kStatsRequest  (3): (empty body)
//   kStatsResponse (4): u32 text_len | text bytes
//   kHello         (5): u16 version | u8 role (0 client, 1 router)
//   kHelloAck      (6): u16 version | u8 accepted
//   kHealthProbe   (7): u64 nonce
//   kHealthAck     (8): u64 nonce | u8 healthy | u32 queue_depth |
//                       [u16 count | count * (u16 model_len | model bytes |
//                        u16 version_len | version bytes)]
//   kForwardInfer  (9): u64 route_hash | <kInferRequest body>
//   kLoadVersion  (10): u16 name_len | name bytes |
//                       u16 arch_len | architecture bytes |
//                       u16 backend_len | backend bytes | u8 bits |
//                       u64 init_seed | u64 state_len | state bytes
//   kPromote      (11): u16 name_len | name bytes
//   kRollback     (12): u16 name_len | name bytes |
//                       u16 reason_len | reason bytes
//   kRolloutStatus(13): u16 name_len | name bytes (empty = all rollouts)
//   kRolloutReply (14): u8 ok | u32 message_len | message bytes
//   kSuperviseCommand (15): u16 verb_len | verb bytes |
//                           u16 lane_len | lane bytes
//   kSuperviseReply   (16): u8 ok | u32 message_len | message bytes
//
// The session key (v4) is an optional client-chosen affinity tag: the
// router hashes (model, session) onto its consistent-hash ring so all
// requests of one session land on the same backend (the hook for future
// sticky streaming); backends carry it through untouched. kForwardInfer
// is the router->backend spelling of an infer: the precomputed route
// hash travels with the request so a backend (or a debug tap) can
// attribute traffic to ring positions; backends execute it exactly like
// kInferRequest and reply kInferResponse.
//
// Model-lifecycle control frames (v5): kLoadVersion hot-loads a
// versioned model ("lenet@v2") into a running server — `state` carries a
// whole nn::save_state checkpoint image (magic/version/CRC validated
// server-side before anything registers; state_len 0 means fresh
// deterministic init from init_seed). kPromote / kRollback are the
// operator overrides of the blue/green rollout controller, and
// kRolloutStatus reads its report. All four are answered by
// kRolloutReply: ok=0 carries the structured failure reason (corrupt
// checkpoint, unknown version, bad state-machine transition) and leaves
// server state untouched. Control frames change server state, so like
// infer frames they require the kHello handshake first. The health-ack
// version list (v5) is how the router tier learns each backend's
// per-model active version; a v4-style ack without the trailing list
// decodes as an empty list.
//
// Supervisor control frames (v6): kSuperviseCommand carries an operator
// verb for the process supervisor's control endpoint — "status" (lane
// ignored) renders the lane table, "release <lane>" lifts a crash-loop
// quarantine so the lane restarts. Answered by kSuperviseReply (same
// shape as kRolloutReply: ok=0 carries the structured failure reason).
// Like the rollout control frames it requires the kHello handshake.
//
// Decoders throw ProtocolError on truncated bodies, oversized frames
// (> kMaxFrameBytes — a corrupt length prefix must not allocate
// gigabytes), absurd ranks, length/numel mismatches, or out-of-range
// priority/status codes. The FrameReader is incremental so socket
// handlers can feed arbitrary read() chunks, and bounds its buffer at
// kMaxBufferedBytes so a frame-spamming peer cannot grow server memory
// without limit.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "serve/micro_batcher.h"

namespace qsnc::serve {

struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Wire protocol revision implemented by this library (both ends of the
/// socket are built from this repo; the constant documents the lineage:
/// 1 = initial, 2 = deadline_us/degraded, 3 = priority/kShedded,
/// 4 = session key + hello/health/forward frames, 5 = model-lifecycle
/// control frames + health-ack version labels, 6 = supervisor control
/// frames). The kHello handshake is mandatory before infer-class frames
/// (kInferRequest/kForwardInfer, whose layout changes across versions)
/// and before the state-changing control frames (kLoadVersion/kPromote/
/// kRollback/kRolloutStatus/kSuperviseCommand): servers drop
/// un-handshaken ones with a ProtocolError, so mixed-version fleets fail
/// fast instead of mis-decoding. Version-stable frames (kStatsRequest,
/// kHealthProbe) are accepted without a handshake.
constexpr uint16_t kProtocolVersion = 6;

/// Hard cap on one frame's payload (length prefix included in checks).
constexpr uint32_t kMaxFrameBytes = 64u << 20;
constexpr int kMaxTensorRank = 8;

/// Cap on bytes a FrameReader may hold (one max frame plus read slack):
/// a peer that pipelines frames faster than they are consumed gets a
/// ProtocolError instead of an unbounded buffer.
constexpr size_t kMaxBufferedBytes =
    static_cast<size_t>(kMaxFrameBytes) + (256u << 10);

enum class MsgType : uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kHello = 5,
  kHelloAck = 6,
  kHealthProbe = 7,
  kHealthAck = 8,
  kForwardInfer = 9,
  kLoadVersion = 10,
  kPromote = 11,
  kRollback = 12,
  kRolloutStatus = 13,
  kRolloutReply = 14,
  kSuperviseCommand = 15,
  kSuperviseReply = 16,
};

enum class PeerRole : uint8_t { kClient = 0, kRouter = 1 };

struct InferRequest {
  uint64_t id = 0;
  uint64_t deadline_us = 0;  // latency budget from enqueue; 0 = none
  Priority priority = Priority::kInteractive;
  /// Optional affinity key: the router pins all requests sharing
  /// (model, session) to one backend. Empty = no affinity (spread).
  std::string session;
  std::string model;
  nn::Tensor image;  // [C, H, W]
};

struct InferResponse {
  uint64_t id = 0;
  Response response;
};

/// One decoded frame: the type tag plus the raw body (tag stripped).
struct Frame {
  MsgType type;
  std::vector<uint8_t> body;
};

/// kHello / kHelloAck bodies (version negotiation at connect time).
struct Hello {
  uint16_t version = kProtocolVersion;
  PeerRole role = PeerRole::kClient;
};
struct HelloAck {
  uint16_t version = kProtocolVersion;
  bool accepted = false;
};

/// One (base model, active version) label in a kHealthAck. An empty
/// version means the base has no explicit version (pre-lifecycle
/// registration).
struct ModelVersionLabel {
  std::string model;
  std::string version;

  bool operator==(const ModelVersionLabel& other) const {
    return model == other.model && version == other.version;
  }
};

/// kHealthProbe / kHealthAck bodies (router liveness + load probes).
struct HealthProbe {
  uint64_t nonce = 0;
};
struct HealthAck {
  uint64_t nonce = 0;
  bool healthy = false;
  uint32_t queue_depth = 0;  // total queued requests across models
  /// Per-base active-version labels (v5); empty when the peer predates
  /// them or serves no versioned models.
  std::vector<ModelVersionLabel> versions;
};

/// kForwardInfer body: the router->backend spelling of an infer.
struct ForwardedInfer {
  uint64_t route_hash = 0;  // ring position the router chose
  InferRequest request;
};

/// kLoadVersion body: hot-load a versioned model into a running server.
/// `state` is a whole nn::save_state checkpoint image (validated
/// server-side); empty means fresh deterministic init from init_seed.
/// `backend_kind` is the registry spelling ("fp32" | "quant" | "snc") —
/// kept a string on the wire so the protocol stays decoupled from the
/// registry enum; the server validates it at apply time.
struct LoadVersionRequest {
  std::string name;          // versioned name, e.g. "lenet-mini@v2"
  std::string architecture;  // model-zoo architecture
  std::string backend_kind;  // "fp32" | "quant" | "snc"
  uint8_t bits = 4;
  uint64_t init_seed = 1;
  std::vector<uint8_t> state;
};

/// kPromote / kRollback / kRolloutStatus bodies. `reason` is only
/// carried by kRollback (the operator's audit note); kRolloutStatus with
/// an empty name reports every rollout.
struct RolloutCommand {
  std::string name;  // versioned name or base, per command semantics
  std::string reason;
};

/// kRolloutReply body: the shared answer to every control frame. ok=0
/// carries the structured failure reason and means server state was left
/// untouched.
struct RolloutReply {
  bool ok = false;
  std::string message;
};

/// kSuperviseCommand body: an operator verb for the supervisor's control
/// endpoint ("status" | "release"); `lane` names the target lane for
/// verbs that take one and is empty otherwise. kSuperviseReply reuses the
/// RolloutReply shape.
struct SuperviseCommand {
  std::string verb;
  std::string lane;
};

std::vector<uint8_t> encode_infer_request(const InferRequest& request);
std::vector<uint8_t> encode_infer_response(const InferResponse& response);
std::vector<uint8_t> encode_stats_request();
std::vector<uint8_t> encode_stats_response(const std::string& text);
std::vector<uint8_t> encode_hello(const Hello& hello);
std::vector<uint8_t> encode_hello_ack(const HelloAck& ack);
std::vector<uint8_t> encode_health_probe(const HealthProbe& probe);
std::vector<uint8_t> encode_health_ack(const HealthAck& ack);
std::vector<uint8_t> encode_forward_infer(const ForwardedInfer& forward);
std::vector<uint8_t> encode_load_version(const LoadVersionRequest& request);
std::vector<uint8_t> encode_promote(const RolloutCommand& command);
std::vector<uint8_t> encode_rollback(const RolloutCommand& command);
std::vector<uint8_t> encode_rollout_status(const RolloutCommand& command);
std::vector<uint8_t> encode_rollout_reply(const RolloutReply& reply);
std::vector<uint8_t> encode_supervise_command(const SuperviseCommand& command);
std::vector<uint8_t> encode_supervise_reply(const RolloutReply& reply);

InferRequest decode_infer_request(const std::vector<uint8_t>& body);
InferResponse decode_infer_response(const std::vector<uint8_t>& body);
std::string decode_stats_response(const std::vector<uint8_t>& body);
Hello decode_hello(const std::vector<uint8_t>& body);
HelloAck decode_hello_ack(const std::vector<uint8_t>& body);
HealthProbe decode_health_probe(const std::vector<uint8_t>& body);
HealthAck decode_health_ack(const std::vector<uint8_t>& body);
ForwardedInfer decode_forward_infer(const std::vector<uint8_t>& body);
LoadVersionRequest decode_load_version(const std::vector<uint8_t>& body);
RolloutCommand decode_promote(const std::vector<uint8_t>& body);
RolloutCommand decode_rollback(const std::vector<uint8_t>& body);
RolloutCommand decode_rollout_status(const std::vector<uint8_t>& body);
RolloutReply decode_rollout_reply(const std::vector<uint8_t>& body);
SuperviseCommand decode_supervise_command(const std::vector<uint8_t>& body);
RolloutReply decode_supervise_reply(const std::vector<uint8_t>& body);

/// Incremental frame splitter over a byte stream.
class FrameReader {
 public:
  void feed(const uint8_t* data, size_t n);

  /// Next complete frame, or nullopt when more bytes are needed. Throws
  /// ProtocolError on an oversized or zero-length frame.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
};

}  // namespace qsnc::serve
