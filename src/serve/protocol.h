// Length-prefixed binary wire protocol of the serving front-end.
//
// Frame layout (all integers little-endian):
//
//   u32 payload_len | u8 type | payload[payload_len - 1]
//
// i.e. payload_len counts the type byte plus the body. Messages
// (protocol version 4 — v2 added deadline_us/degraded, v3 the request
// priority byte and the kShedded status code, v4 the session key,
// the hello handshake, health probes, and the router-forward frame):
//
//   kInferRequest  (1): u64 id | u64 deadline_us | u8 priority |
//                       u16 session_len | session bytes |
//                       u16 model_len | model bytes | u8 rank |
//                       u32 dim[rank] | f32 data[numel]
//   kInferResponse (2): u64 id | u8 status | u8 degraded |
//                       i64 prediction | u64 latency_us |
//                       u64 retry_after_us | u32 batch_size |
//                       u16 error_len | error bytes
//   kStatsRequest  (3): (empty body)
//   kStatsResponse (4): u32 text_len | text bytes
//   kHello         (5): u16 version | u8 role (0 client, 1 router)
//   kHelloAck      (6): u16 version | u8 accepted
//   kHealthProbe   (7): u64 nonce
//   kHealthAck     (8): u64 nonce | u8 healthy | u32 queue_depth
//   kForwardInfer  (9): u64 route_hash | <kInferRequest body>
//
// The session key (v4) is an optional client-chosen affinity tag: the
// router hashes (model, session) onto its consistent-hash ring so all
// requests of one session land on the same backend (the hook for future
// sticky streaming); backends carry it through untouched. kForwardInfer
// is the router->backend spelling of an infer: the precomputed route
// hash travels with the request so a backend (or a debug tap) can
// attribute traffic to ring positions; backends execute it exactly like
// kInferRequest and reply kInferResponse.
//
// Decoders throw ProtocolError on truncated bodies, oversized frames
// (> kMaxFrameBytes — a corrupt length prefix must not allocate
// gigabytes), absurd ranks, length/numel mismatches, or out-of-range
// priority/status codes. The FrameReader is incremental so socket
// handlers can feed arbitrary read() chunks, and bounds its buffer at
// kMaxBufferedBytes so a frame-spamming peer cannot grow server memory
// without limit.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "serve/micro_batcher.h"

namespace qsnc::serve {

struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Wire protocol revision implemented by this library (both ends of the
/// socket are built from this repo; the constant documents the lineage:
/// 1 = initial, 2 = deadline_us/degraded, 3 = priority/kShedded,
/// 4 = session key + hello/health/forward frames). The kHello handshake
/// is mandatory before infer-class frames (kInferRequest/kForwardInfer,
/// whose layout changes across versions): servers drop un-handshaken
/// infer frames with a ProtocolError, so mixed-version fleets fail fast
/// instead of mis-decoding. Version-stable frames (kStatsRequest,
/// kHealthProbe) are accepted without a handshake.
constexpr uint16_t kProtocolVersion = 4;

/// Hard cap on one frame's payload (length prefix included in checks).
constexpr uint32_t kMaxFrameBytes = 64u << 20;
constexpr int kMaxTensorRank = 8;

/// Cap on bytes a FrameReader may hold (one max frame plus read slack):
/// a peer that pipelines frames faster than they are consumed gets a
/// ProtocolError instead of an unbounded buffer.
constexpr size_t kMaxBufferedBytes =
    static_cast<size_t>(kMaxFrameBytes) + (256u << 10);

enum class MsgType : uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kHello = 5,
  kHelloAck = 6,
  kHealthProbe = 7,
  kHealthAck = 8,
  kForwardInfer = 9,
};

enum class PeerRole : uint8_t { kClient = 0, kRouter = 1 };

struct InferRequest {
  uint64_t id = 0;
  uint64_t deadline_us = 0;  // latency budget from enqueue; 0 = none
  Priority priority = Priority::kInteractive;
  /// Optional affinity key: the router pins all requests sharing
  /// (model, session) to one backend. Empty = no affinity (spread).
  std::string session;
  std::string model;
  nn::Tensor image;  // [C, H, W]
};

struct InferResponse {
  uint64_t id = 0;
  Response response;
};

/// One decoded frame: the type tag plus the raw body (tag stripped).
struct Frame {
  MsgType type;
  std::vector<uint8_t> body;
};

/// kHello / kHelloAck bodies (version negotiation at connect time).
struct Hello {
  uint16_t version = kProtocolVersion;
  PeerRole role = PeerRole::kClient;
};
struct HelloAck {
  uint16_t version = kProtocolVersion;
  bool accepted = false;
};

/// kHealthProbe / kHealthAck bodies (router liveness + load probes).
struct HealthProbe {
  uint64_t nonce = 0;
};
struct HealthAck {
  uint64_t nonce = 0;
  bool healthy = false;
  uint32_t queue_depth = 0;  // total queued requests across models
};

/// kForwardInfer body: the router->backend spelling of an infer.
struct ForwardedInfer {
  uint64_t route_hash = 0;  // ring position the router chose
  InferRequest request;
};

std::vector<uint8_t> encode_infer_request(const InferRequest& request);
std::vector<uint8_t> encode_infer_response(const InferResponse& response);
std::vector<uint8_t> encode_stats_request();
std::vector<uint8_t> encode_stats_response(const std::string& text);
std::vector<uint8_t> encode_hello(const Hello& hello);
std::vector<uint8_t> encode_hello_ack(const HelloAck& ack);
std::vector<uint8_t> encode_health_probe(const HealthProbe& probe);
std::vector<uint8_t> encode_health_ack(const HealthAck& ack);
std::vector<uint8_t> encode_forward_infer(const ForwardedInfer& forward);

InferRequest decode_infer_request(const std::vector<uint8_t>& body);
InferResponse decode_infer_response(const std::vector<uint8_t>& body);
std::string decode_stats_response(const std::vector<uint8_t>& body);
Hello decode_hello(const std::vector<uint8_t>& body);
HelloAck decode_hello_ack(const std::vector<uint8_t>& body);
HealthProbe decode_health_probe(const std::vector<uint8_t>& body);
HealthAck decode_health_ack(const std::vector<uint8_t>& body);
ForwardedInfer decode_forward_infer(const std::vector<uint8_t>& body);

/// Incremental frame splitter over a byte stream.
class FrameReader {
 public:
  void feed(const uint8_t* data, size_t n);

  /// Next complete frame, or nullopt when more bytes are needed. Throws
  /// ProtocolError on an oversized or zero-length frame.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
};

}  // namespace qsnc::serve
