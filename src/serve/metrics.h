// Serving observability: latency histograms and per-model counters.
//
// The serving hot path records one latency sample per completed request
// (enqueue -> response) into a log2-bucketed histogram, so percentile
// queries are O(buckets) and recording is O(1) under a short lock. The
// buckets cover [1 us, ~2^62 us); percentiles interpolate linearly inside
// the winning bucket, which bounds the error at a factor-of-2 bucket width
// — plenty for p50/p95/p99 dashboards, and it never allocates.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/admission.h"

namespace qsnc::serve {

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(uint64_t micros);

  uint64_t count() const;
  uint64_t max_us() const;
  double mean_us() const;

  /// Approximate percentile in microseconds, p in [0, 100]. Returns 0 when
  /// empty. Error is bounded by the log2 bucket width.
  uint64_t percentile_us(double p) const;

 private:
  static constexpr int kBuckets = 63;
  static int bucket_of(uint64_t micros);

  mutable std::mutex mu_;
  uint64_t buckets_[kBuckets];
  uint64_t count_ = 0;
  uint64_t max_us_ = 0;
  double sum_us_ = 0.0;
};

/// Point-in-time view of one model's serving counters.
struct ModelStatsSnapshot {
  std::string model;
  std::string backend;
  uint64_t completed = 0;
  uint64_t rejected = 0;   // backpressure rejections
  uint64_t errors = 0;     // backend exceptions / shape mismatches
  uint64_t deadline_exceeded = 0;  // expired before execution
  uint64_t degraded = 0;   // requests served in a degraded backend mode
  uint64_t shed = 0;       // overload sheds (CoDel + concurrency limit)
  uint64_t breaker_shed = 0;  // fast fails while the breaker was open
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t batches = 0;    // backend invocations
  double mean_batch = 0.0; // completed / batches
  double qps = 0.0;        // completed / seconds since first completion
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0.0;
  size_t queue_depth = 0;  // filled by the owner at snapshot time
};

/// Counters for one served model. Thread-safe; owned by the MicroBatcher.
class ModelMetrics {
 public:
  void on_complete(uint64_t latency_us);
  void on_reject();
  void on_error();
  void on_deadline_exceeded();
  void on_degraded();
  void on_shed();
  void on_breaker_shed();
  void on_batch(size_t batch_size);

  /// Snapshot with the latency percentiles filled in. `model`/`backend`
  /// and `queue_depth` are the caller's to set.
  ModelStatsSnapshot snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  LatencyHistogram latency_;
  mutable std::mutex mu_;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t errors_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t degraded_ = 0;
  uint64_t shed_ = 0;
  uint64_t breaker_shed_ = 0;
  uint64_t batches_ = 0;
  bool saw_first_ = false;
  Clock::time_point first_;
  Clock::time_point last_;
};

/// Renders snapshots as an aligned table (report::Table layout).
std::string render_stats(const std::vector<ModelStatsSnapshot>& stats);

}  // namespace qsnc::serve
