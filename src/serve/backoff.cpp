#include "serve/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::serve {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Backoff::Backoff(const BackoffConfig& config) : config_(config) {
  if (config_.base_us == 0 || config_.max_us < config_.base_us) {
    throw std::invalid_argument(
        "Backoff: need 0 < base_us <= max_us");
  }
  if (config_.multiplier < 1.0) {
    throw std::invalid_argument("Backoff: multiplier must be >= 1");
  }
}

uint64_t Backoff::delay_us(int attempt) const {
  if (attempt < 0) throw std::invalid_argument("Backoff: negative attempt");
  const double raw = static_cast<double>(config_.base_us) *
                     std::pow(config_.multiplier, attempt);
  const double capped =
      std::min(raw, static_cast<double>(config_.max_us));
  // 53 high-quality bits → uniform [0, 1), mapped to [0.5, 1.0).
  const uint64_t bits = splitmix64(
      config_.seed ^ (static_cast<uint64_t>(attempt) + 1) *
                         0x9E3779B97F4A7C15ull);
  const double unit =
      static_cast<double>(bits >> 11) * 0x1.0p-53;
  const double jitter = 0.5 + 0.5 * unit;
  return std::max<uint64_t>(1, static_cast<uint64_t>(capped * jitter));
}

uint64_t Backoff::delay_us(int attempt, uint64_t server_hint_us) const {
  return std::max(delay_us(attempt),
                  std::min(server_hint_us, config_.max_us));
}

}  // namespace qsnc::serve
