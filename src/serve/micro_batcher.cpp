#include "serve/micro_batcher.h"

#include <algorithm>
#include <exception>

namespace qsnc::serve {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kShedded: return "shedded";
  }
  return "?";
}

MicroBatcher::MicroBatcher(Backend& backend, const BatchOptions& options)
    : backend_(backend), options_(options),
      breaker_(options.admission.breaker_threshold,
               options.admission.breaker_open_us),
      ema_batch_us_(static_cast<uint64_t>(
          std::max<int64_t>(options.batch_timeout_us, 1))) {
  if (options_.max_batch < 1 || options_.queue_capacity < 1 ||
      options_.batch_timeout_us < 0) {
    throw std::invalid_argument(
        "MicroBatcher: max_batch and queue_capacity must be >= 1, "
        "batch_timeout_us >= 0");
  }
  worker_ = std::thread([this] { loop(); });
}

MicroBatcher::~MicroBatcher() { drain(); }

int64_t MicroBatcher::to_us(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

uint64_t MicroBatcher::retry_hint_us(size_t depth) const {
  // Time to drain `depth` queued requests at the observed batch cadence,
  // plus one batch window for the retry itself.
  const uint64_t batches_ahead =
      depth / static_cast<size_t>(options_.max_batch) + 1;
  return batches_ahead * ema_batch_us_.load(std::memory_order_relaxed) +
         static_cast<uint64_t>(options_.batch_timeout_us);
}

size_t MicroBatcher::total_queued() const {
  size_t total = 0;
  for (int c = 0; c < kNumPriorities; ++c) total += queue_[c].size();
  return total;
}

int64_t MicroBatcher::allowed_depth() const {
  const uint64_t ema =
      std::max<uint64_t>(ema_batch_us_.load(std::memory_order_relaxed), 1);
  const int64_t batches_within_target =
      options_.admission.delay_target_us / static_cast<int64_t>(ema);
  return std::max<int64_t>(options_.max_batch,
                           batches_within_target * options_.max_batch);
}

std::future<Response> MicroBatcher::submit(nn::Tensor image,
                                           uint64_t deadline_us,
                                           Priority priority) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  const nn::Shape& chw = backend_.input_shape();
  if (image.shape() != chw) {
    metrics_.on_error();
    Response r;
    r.status = Status::kError;
    r.error = "image shape " + nn::shape_to_string(image.shape()) +
              " does not match model input " + nn::shape_to_string(chw);
    promise.set_value(std::move(r));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Response r;
      r.status = Status::kShutdown;
      r.error = "server draining";
      promise.set_value(std::move(r));
      return future;
    }
    const size_t depth = total_queued();
    const AdmissionOptions& adm = options_.admission;
    if (adm.max_concurrency > 0 &&
        in_flight_.load(std::memory_order_relaxed) >= adm.max_concurrency) {
      metrics_.on_shed();
      Response r;
      r.status = Status::kShedded;
      r.retry_after_us = retry_hint_us(depth);
      r.error = "admission: concurrency limit (" +
                std::to_string(adm.max_concurrency) + ") reached";
      promise.set_value(std::move(r));
      return future;
    }
    if (depth >= static_cast<size_t>(options_.queue_capacity)) {
      metrics_.on_reject();
      Response r;
      r.status = Status::kRejected;
      r.retry_after_us = retry_hint_us(depth);
      r.error = "queue full";
      promise.set_value(std::move(r));
      return future;
    }
    // Breaker last: a fast fail only when the request would otherwise be
    // accepted, so a consumed half-open probe slot is never wasted on a
    // request the queue would have rejected anyway.
    const int64_t now_us = to_us(Clock::now());
    if (!breaker_.allow(now_us)) {
      metrics_.on_breaker_shed();
      Response r;
      r.status = Status::kShedded;
      r.retry_after_us =
          static_cast<uint64_t>(breaker_.retry_after_us(now_us));
      r.error = "circuit breaker open (backend failing)";
      promise.set_value(std::move(r));
      return future;
    }
    Pending p;
    p.image = std::move(image);
    p.promise = std::move(promise);
    p.enqueued = Clock::now();
    p.deadline_us = deadline_us;
    p.priority = priority;
    queue_[static_cast<int>(priority)].push_back(std::move(p));
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return future;
}

void MicroBatcher::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || total_queued() > 0; });
    if (total_queued() == 0) {
      if (stopping_) return;
      continue;
    }
    // Batch window: wait for more requests up to the deadline, unless the
    // batch fills or the server starts draining (then flush immediately).
    if (total_queued() < static_cast<size_t>(options_.max_batch) &&
        !stopping_ && options_.batch_timeout_us > 0) {
      const Clock::time_point deadline =
          Clock::now() + std::chrono::microseconds(options_.batch_timeout_us);
      cv_.wait_until(lock, deadline, [&] {
        return stopping_ ||
               total_queued() >= static_cast<size_t>(options_.max_batch);
      });
    }
    const Clock::time_point now = Clock::now();

    // CoDel-style shed-mode state machine: the controlled signal is the
    // wait of the oldest queued request. Sustained time above the target
    // turns shedding on; any dip below turns it off.
    const AdmissionOptions& adm = options_.admission;
    if (adm.delay_target_us > 0) {
      Clock::time_point oldest = now;
      for (int c = 0; c < kNumPriorities; ++c) {
        if (!queue_[c].empty()) {
          oldest = std::min(oldest, queue_[c].front().enqueued);
        }
      }
      const int64_t delay_us =
          std::chrono::duration_cast<std::chrono::microseconds>(now - oldest)
              .count();
      if (delay_us > adm.delay_target_us) {
        if (!above_target_) {
          above_target_ = true;
          above_since_ = now;
        } else if (now - above_since_ >=
                   std::chrono::microseconds(adm.delay_window_us)) {
          shedding_ = true;
        }
      } else {
        above_target_ = false;
        shedding_ = false;
      }
    }

    // Shed: trim the queues to what one delay target's worth of batches
    // can serve, strictly lowest-priority-first, oldest first within a
    // class. The shed set is a pure function of the queue contents and the
    // observed batch cadence (see serve/admission.h).
    std::vector<Pending> shed;
    if (shedding_) {
      int64_t depths[kNumPriorities];
      int64_t sheds[kNumPriorities];
      for (int c = 0; c < kNumPriorities; ++c) {
        depths[c] = static_cast<int64_t>(queue_[c].size());
      }
      select_sheds(depths, allowed_depth(), sheds);
      for (int c = 0; c < kNumPriorities; ++c) {
        for (int64_t i = 0; i < sheds[c]; ++i) {
          shed.push_back(std::move(queue_[c].front()));
          queue_[c].pop_front();
        }
      }
    }

    // Batch formation: highest priority first, FIFO within a class.
    // Expired requests are resolved with a structured kDeadlineExceeded
    // instead of burning backend time on an answer the client has already
    // given up on; they do not occupy batch slots.
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    for (int c = kNumPriorities - 1; c >= 0; --c) {
      while (!queue_[c].empty() &&
             batch.size() < static_cast<size_t>(options_.max_batch)) {
        Pending p = std::move(queue_[c].front());
        queue_[c].pop_front();
        if (p.deadline_us > 0 &&
            now - p.enqueued >= std::chrono::microseconds(p.deadline_us)) {
          expired.push_back(std::move(p));
        } else {
          batch.push_back(std::move(p));
        }
      }
    }
    const size_t depth_after = total_queued();
    lock.unlock();
    for (Pending& p : shed) {
      metrics_.on_shed();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      Response r;
      r.status = Status::kShedded;
      r.retry_after_us = retry_hint_us(depth_after);
      r.error = "shed: queue delay over target (priority " +
                std::string(priority_name(p.priority)) + ")";
      p.promise.set_value(std::move(r));
    }
    for (Pending& p : expired) {
      metrics_.on_deadline_exceeded();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      Response r;
      r.status = Status::kDeadlineExceeded;
      r.latency_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - p.enqueued)
              .count());
      r.error = "deadline of " + std::to_string(p.deadline_us) +
                " us expired before execution";
      p.promise.set_value(std::move(r));
    }
    if (batch.empty()) {
      // A round that resolved work without executing anything must not
      // leave a consumed half-open probe slot behind.
      breaker_.release_probe();
    } else {
      if (options_.chaos != nullptr) {
        const uint64_t spike = options_.chaos->queue_spike_us();
        if (spike > 0 && !stopping_) {
          std::this_thread::sleep_for(std::chrono::microseconds(spike));
        }
      }
      execute(batch);
    }
    lock.lock();
  }
}

void MicroBatcher::execute(std::vector<Pending>& batch) {
  const Clock::time_point started = Clock::now();
  const size_t n = batch.size();
  const nn::Shape& chw = backend_.input_shape();
  const int64_t image_numel = chw[0] * chw[1] * chw[2];

  nn::Tensor batched(
      {static_cast<int64_t>(n), chw[0], chw[1], chw[2]});
  for (size_t i = 0; i < n; ++i) {
    const nn::Tensor& img = batch[i].image;
    std::copy(img.data(), img.data() + image_numel,
              batched.data() + static_cast<int64_t>(i) * image_numel);
  }

  metrics_.on_batch(n);
  std::vector<int64_t> predictions;
  std::string error;
  bool degraded = false;
  try {
    if (options_.chaos != nullptr) {
      const uint64_t lat = options_.chaos->backend_latency_us();
      if (lat > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(lat));
      }
      if (options_.chaos->backend_error()) {
        throw std::runtime_error("chaos: injected backend error");
      }
    }
    predictions = backend_.infer_batch(batched);
    degraded = backend_.last_batch_degraded();
    if (predictions.size() != n) {
      error = "backend returned " + std::to_string(predictions.size()) +
              " predictions for a batch of " + std::to_string(n);
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  const Clock::time_point done = Clock::now();
  // Injected and real backend failures alike count toward the breaker
  // threshold; a served batch closes it from any state.
  if (error.empty()) {
    breaker_.on_success();
  } else {
    breaker_.on_failure(to_us(done));
  }
  const uint64_t batch_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(done - started)
          .count());
  // EMA with alpha = 1/4: smooth enough for a retry hint, adapts in a few
  // batches after a load shift.
  const uint64_t prev = ema_batch_us_.load(std::memory_order_relaxed);
  ema_batch_us_.store(prev - prev / 4 + batch_us / 4,
                      std::memory_order_relaxed);

  for (size_t i = 0; i < n; ++i) {
    Response r;
    if (error.empty()) {
      r.status = Status::kOk;
      r.prediction = predictions[i];
      r.latency_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              done - batch[i].enqueued)
              .count());
      r.batch_size = static_cast<uint32_t>(n);
      r.degraded = degraded;
      metrics_.on_complete(r.latency_us);
      if (degraded) metrics_.on_degraded();
    } else {
      r.status = Status::kError;
      r.error = error;
      r.batch_size = static_cast<uint32_t>(n);
      metrics_.on_error();
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    batch[i].promise.set_value(std::move(r));
  }
}

void MicroBatcher::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued();
}

ModelStatsSnapshot MicroBatcher::stats() const {
  ModelStatsSnapshot s = metrics_.snapshot();
  s.backend = backend_.kind();
  s.queue_depth = queue_depth();
  s.breaker_state = breaker_.state();
  return s;
}

}  // namespace qsnc::serve
