#include "serve/micro_batcher.h"

#include <algorithm>
#include <exception>

namespace qsnc::serve {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

MicroBatcher::MicroBatcher(Backend& backend, const BatchOptions& options)
    : backend_(backend), options_(options),
      ema_batch_us_(static_cast<uint64_t>(
          std::max<int64_t>(options.batch_timeout_us, 1))) {
  if (options_.max_batch < 1 || options_.queue_capacity < 1 ||
      options_.batch_timeout_us < 0) {
    throw std::invalid_argument(
        "MicroBatcher: max_batch and queue_capacity must be >= 1, "
        "batch_timeout_us >= 0");
  }
  worker_ = std::thread([this] { loop(); });
}

MicroBatcher::~MicroBatcher() { drain(); }

uint64_t MicroBatcher::retry_hint_us(size_t depth) const {
  // Time to drain `depth` queued requests at the observed batch cadence,
  // plus one batch window for the retry itself.
  const uint64_t batches_ahead =
      depth / static_cast<size_t>(options_.max_batch) + 1;
  return batches_ahead * ema_batch_us_.load(std::memory_order_relaxed) +
         static_cast<uint64_t>(options_.batch_timeout_us);
}

std::future<Response> MicroBatcher::submit(nn::Tensor image,
                                           uint64_t deadline_us) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  const nn::Shape& chw = backend_.input_shape();
  if (image.shape() != chw) {
    metrics_.on_error();
    Response r;
    r.status = Status::kError;
    r.error = "image shape " + nn::shape_to_string(image.shape()) +
              " does not match model input " + nn::shape_to_string(chw);
    promise.set_value(std::move(r));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Response r;
      r.status = Status::kShutdown;
      r.error = "server draining";
      promise.set_value(std::move(r));
      return future;
    }
    if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      metrics_.on_reject();
      Response r;
      r.status = Status::kRejected;
      r.retry_after_us = retry_hint_us(queue_.size());
      r.error = "queue full";
      promise.set_value(std::move(r));
      return future;
    }
    Pending p;
    p.image = std::move(image);
    p.promise = std::move(promise);
    p.enqueued = Clock::now();
    p.deadline_us = deadline_us;
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
  return future;
}

void MicroBatcher::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Batch window: wait for more requests up to the deadline, unless the
    // batch fills or the server starts draining (then flush immediately).
    if (static_cast<int>(queue_.size()) < options_.max_batch &&
        !stopping_ && options_.batch_timeout_us > 0) {
      const Clock::time_point deadline =
          Clock::now() + std::chrono::microseconds(options_.batch_timeout_us);
      cv_.wait_until(lock, deadline, [&] {
        return stopping_ ||
               static_cast<int>(queue_.size()) >= options_.max_batch;
      });
    }
    // Batch formation: expired requests are resolved with a structured
    // kDeadlineExceeded instead of burning backend time on an answer the
    // client has already given up on; they do not occupy batch slots.
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    const Clock::time_point now = Clock::now();
    while (!queue_.empty() &&
           batch.size() < static_cast<size_t>(options_.max_batch)) {
      Pending p = std::move(queue_.front());
      queue_.pop_front();
      if (p.deadline_us > 0 &&
          now - p.enqueued >= std::chrono::microseconds(p.deadline_us)) {
        expired.push_back(std::move(p));
      } else {
        batch.push_back(std::move(p));
      }
    }
    lock.unlock();
    for (Pending& p : expired) {
      metrics_.on_deadline_exceeded();
      Response r;
      r.status = Status::kDeadlineExceeded;
      r.latency_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - p.enqueued)
              .count());
      r.error = "deadline of " + std::to_string(p.deadline_us) +
                " us expired before execution";
      p.promise.set_value(std::move(r));
    }
    if (!batch.empty()) execute(batch);
    lock.lock();
  }
}

void MicroBatcher::execute(std::vector<Pending>& batch) {
  const Clock::time_point started = Clock::now();
  const size_t n = batch.size();
  const nn::Shape& chw = backend_.input_shape();
  const int64_t image_numel = chw[0] * chw[1] * chw[2];

  nn::Tensor batched(
      {static_cast<int64_t>(n), chw[0], chw[1], chw[2]});
  for (size_t i = 0; i < n; ++i) {
    const nn::Tensor& img = batch[i].image;
    std::copy(img.data(), img.data() + image_numel,
              batched.data() + static_cast<int64_t>(i) * image_numel);
  }

  metrics_.on_batch(n);
  std::vector<int64_t> predictions;
  std::string error;
  bool degraded = false;
  try {
    predictions = backend_.infer_batch(batched);
    degraded = backend_.last_batch_degraded();
    if (predictions.size() != n) {
      error = "backend returned " + std::to_string(predictions.size()) +
              " predictions for a batch of " + std::to_string(n);
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  const Clock::time_point done = Clock::now();
  const uint64_t batch_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(done - started)
          .count());
  // EMA with alpha = 1/4: smooth enough for a retry hint, adapts in a few
  // batches after a load shift.
  const uint64_t prev = ema_batch_us_.load(std::memory_order_relaxed);
  ema_batch_us_.store(prev - prev / 4 + batch_us / 4,
                      std::memory_order_relaxed);

  for (size_t i = 0; i < n; ++i) {
    Response r;
    if (error.empty()) {
      r.status = Status::kOk;
      r.prediction = predictions[i];
      r.latency_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              done - batch[i].enqueued)
              .count());
      r.batch_size = static_cast<uint32_t>(n);
      r.degraded = degraded;
      metrics_.on_complete(r.latency_us);
      if (degraded) metrics_.on_degraded();
    } else {
      r.status = Status::kError;
      r.error = error;
      r.batch_size = static_cast<uint32_t>(n);
      metrics_.on_error();
    }
    batch[i].promise.set_value(std::move(r));
  }
}

void MicroBatcher::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

size_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ModelStatsSnapshot MicroBatcher::stats() const {
  ModelStatsSnapshot s = metrics_.snapshot();
  s.backend = backend_.kind();
  s.queue_depth = queue_depth();
  return s;
}

}  // namespace qsnc::serve
