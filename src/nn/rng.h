// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in qsnc (weight init, data synthesis, spike
// encoding, device variation) draws from an explicitly seeded Rng so that
// test and benchmark runs are bit-reproducible across invocations.
#pragma once

#include <cstdint>
#include <random>

namespace qsnc::nn {

/// Seedable generator wrapping a fixed-algorithm engine (mt19937_64), so
/// sequences are identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);

  /// Standard normal scaled to the given mean/stddev.
  float normal(float mean = 0.0f, float stddev = 1.0f);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// SplitMix64-mixed seed for stream `stream_id` of a master seed.
  /// Parallel components (dropout mask chunks, per-worker generators)
  /// derive one statistically independent stream per work unit instead of
  /// sharing an engine, so draws are race-free and reproducible regardless
  /// of thread count or execution order.
  static uint64_t stream_seed(uint64_t master_seed, uint64_t stream_id);

  /// Convenience: an Rng seeded with stream_seed(master_seed, stream_id).
  static Rng stream(uint64_t master_seed, uint64_t stream_id) {
    return Rng(stream_seed(master_seed, stream_id));
  }

  /// Underlying engine (for std::shuffle and distributions).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qsnc::nn
