#include "nn/rng.h"

#include <algorithm>

namespace qsnc::nn {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

uint64_t Rng::stream_seed(uint64_t master_seed, uint64_t stream_id) {
  // SplitMix64 finalizer over master + golden-ratio-spaced stream offsets:
  // adjacent stream ids land far apart in the mt19937_64 seed space, so
  // streams behave as independent generators.
  uint64_t z = master_seed + (stream_id + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace qsnc::nn
