#include "nn/rng.h"

#include <algorithm>

namespace qsnc::nn {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace qsnc::nn
