#include "nn/network.h"

namespace qsnc::nn {

Tensor Network::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, train);
  }
  return x;
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    visit_layers(layer.get(), [&out](Layer* l) {
      // Composite layers aggregate their children's params; collecting at
      // leaves only avoids duplicates.
      if (l->children().empty()) {
        for (Param* p : l->params()) out.push_back(p);
      }
    });
  }
  return out;
}

int64_t Network::num_weights() {
  int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

void Network::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<ReLU*> Network::signal_layers() {
  std::vector<ReLU*> out;
  for (auto& layer : layers_) {
    visit_layers(layer.get(), [&out](Layer* l) {
      if (auto* r = dynamic_cast<ReLU*>(l)) out.push_back(r);
    });
  }
  return out;
}

void Network::set_signal_regularizer(const SignalRegularizer* reg) {
  for (ReLU* r : signal_layers()) r->set_regularizer(reg);
}

void Network::set_signal_quantizer(const SignalQuantizer* q) {
  for (ReLU* r : signal_layers()) r->set_quantizer(q);
}

float Network::signal_penalty() {
  float acc = 0.0f;
  for (ReLU* r : signal_layers()) acc += r->last_penalty();
  return acc;
}

std::vector<int64_t> Network::predict(const Tensor& batch) {
  Tensor logits = forward(batch, /*train=*/false);
  const int64_t n = logits.dim(0);
  const int64_t k = logits.dim(1);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int64_t best = 0;
    for (int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    labels[static_cast<size_t>(i)] = best;
  }
  return labels;
}

std::vector<std::string> Network::layer_names() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& layer : layers_) out.push_back(layer->name());
  return out;
}

}  // namespace qsnc::nn
