#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qsnc::nn {

std::vector<float> softmax(const float* logits, int64_t k) {
  std::vector<float> p(static_cast<size_t>(k));
  const float m = *std::max_element(logits, logits + k);
  float z = 0.0f;
  for (int64_t j = 0; j < k; ++j) {
    p[static_cast<size_t>(j)] = std::exp(logits[j] - m);
    z += p[static_cast<size_t>(j)];
  }
  for (float& v : p) v /= z;
  return p;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: logits must be rank 2");
  }
  const int64_t n = logits.dim(0);
  const int64_t k = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }

  LossResult result;
  result.grad = Tensor(logits.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss_acc = 0.0;

  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= k) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    const float* row = logits.data() + i * k;
    // Loss in log-space: -log p[y] = log(sum_j exp(l_j - m)) + m - l_y.
    // Going through the probability (then clamping it away from 0) would
    // saturate the loss at -log(eps) and break its linearity in the margin
    // for confident wrong predictions.
    float* grow = result.grad.data() + i * k;
    const float m = *std::max_element(row, row + k);
    float z = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      grow[j] = std::exp(row[j] - m);
      z += grow[j];
    }
    loss_acc += static_cast<double>(std::log(z) + m - row[y]);
    for (int64_t j = 0; j < k; ++j) {
      grow[j] = (grow[j] / z - (j == y ? 1.0f : 0.0f)) * inv_n;
    }
  }
  result.loss = static_cast<float>(loss_acc * inv_n);
  return result;
}

}  // namespace qsnc::nn
