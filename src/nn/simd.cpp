#include "nn/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qsnc::nn::simd {

namespace {

bool detect_env_forced_scalar() {
  const char* v = std::getenv("QSNC_FORCE_SCALAR");
  return v != nullptr && std::strcmp(v, "0") != 0 && v[0] != '\0';
}

bool detect_avx2() {
#if defined(QSNC_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::atomic<bool> g_force_scalar{false};

}  // namespace

bool cpu_has_avx2() {
  static const bool has = detect_avx2();
  return has;
}

bool env_forced_scalar() {
  static const bool forced = detect_env_forced_scalar();
  return forced;
}

bool use_avx2() {
  return cpu_has_avx2() && !env_forced_scalar() &&
         !g_force_scalar.load(std::memory_order_relaxed);
}

bool set_force_scalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

}  // namespace qsnc::nn::simd
