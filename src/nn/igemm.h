// True integer GEMM for the quantized serving paths.
//
// The paper's deployment arithmetic is M-bit unsigned spike-count signals
// against N-bit fixed-point weights; both fit int16 with room to spare, so
// the product sums are computed exactly in int32 accumulators and
// requantized once at the end by the caller (core/int_quant_engine.*, the
// SNC row drives). Integer accumulation is associative, so — unlike the
// fp32 kernels — every schedule (scalar, AVX2 vpmaddwd, any thread count)
// is bit-identical by construction; tests still pin it.
//
// Overflow contract (checked by callers via the dynamic-fixed-point rules
// in core/dynamic_fixed_point.h): max|A| * max|B| * k < 2^31.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace qsnc::nn {

/// C[m x n] (int32) = A[m x k] (int16) * B[k x n] (int16), row-major.
void igemm(const int16_t* a, const int16_t* b, int32_t* c, int64_t m,
           int64_t k, int64_t n);

/// C[m x n] += A[m x k] * B[k x n].
void igemm_acc(const int16_t* a, const int16_t* b, int32_t* c, int64_t m,
               int64_t k, int64_t n);

/// B operand packed once and reused across calls (static layer weights).
/// Keeps both the raw row-major copy (scalar path) and the vpmaddwd panel
/// (AVX2 path), so dispatch may flip per call without repacking.
class IGemmPackedB {
 public:
  IGemmPackedB() = default;

  /// Packs row-major B[k x n].
  IGemmPackedB(const int16_t* b, int64_t k, int64_t n);

  int64_t k() const { return k_; }
  int64_t n() const { return n_; }
  bool empty() const { return k_ == 0 && n_ == 0; }

  const int16_t* raw() const { return raw_.data(); }
  const int16_t* panel() const { return panel_.data(); }

 private:
  int64_t k_ = 0;
  int64_t n_ = 0;
  util::aligned_vector<int16_t> raw_;
  util::aligned_vector<int16_t> panel_;
};

/// C[m x n] = A[m x k] * B using a prepacked right operand.
void igemm_prepacked(const int16_t* a, const IGemmPackedB& b, int32_t* c,
                     int64_t m);

/// acc[c] += vals[e] * panel[rows[e] * cols + c] for every event e — the
/// integer form of the SNC packed-panel row drive (crossbar.h). vals carry
/// spike counts, panel the signed weight levels; exact in int32.
void iaccumulate_rows(const int32_t* rows, const int32_t* vals,
                      int64_t n_events, const int16_t* panel, int64_t cols,
                      int32_t* acc);

/// Batched integer row drive: acc[b * cols + c] += vals[e * batch + b] *
/// panel[rows[e] * cols + c] for every event e and image b. One pass over
/// each event's level row serves the whole batch; exact in int32, so the
/// result equals `batch` independent iaccumulate_rows calls bit for bit.
void iaccumulate_rows_batch(const int32_t* rows, const int32_t* vals,
                            int64_t n_events, int64_t batch,
                            const int16_t* panel, int64_t cols, int32_t* acc);

}  // namespace qsnc::nn
