// Weight initialization schemes.
#pragma once

#include <cstdint>

#include "nn/rng.h"
#include "nn/tensor.h"

namespace qsnc::nn {

/// He/Kaiming-normal init: N(0, sqrt(2/fan_in)). The default for all conv
/// and dense layers (every hidden activation in the model zoo is ReLU).
void he_normal(Tensor& w, int64_t fan_in, Rng& rng);

/// Glorot/Xavier-uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Uniform init in [-a, a].
void uniform(Tensor& w, float a, Rng& rng);

}  // namespace qsnc::nn
