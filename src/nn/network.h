// Sequential network container with signal-hook plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/layers/relu.h"
#include "nn/signal.h"

namespace qsnc::nn {

class Network {
 public:
  Network() = default;

  // Networks own their layers; moving is fine, copying is not.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer and returns a typed reference to it for convenience:
  ///   auto& conv = net.emplace<Conv2d>(1, 6, 5, 1, 2, rng);
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  size_t size() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_.at(i); }
  const Layer& layer(size_t i) const { return *layers_.at(i); }

  /// Full forward pass over a batch.
  Tensor forward(const Tensor& input, bool train = false);

  /// Full backward pass; call after forward(..., train=true). Returns the
  /// gradient with respect to the network input.
  Tensor backward(const Tensor& grad_logits);

  /// All trainable parameters, including those nested in composite layers.
  std::vector<Param*> params();

  /// Total number of trainable scalar weights.
  int64_t num_weights();

  void zero_grad();

  /// All signal-boundary (ReLU) layers at any nesting depth, in
  /// forward order.
  std::vector<ReLU*> signal_layers();

  /// Attach `reg` to every signal layer except the excluded trailing count
  /// (the paper does not quantize the final classifier output). nullptr
  /// detaches.
  void set_signal_regularizer(const SignalRegularizer* reg);

  /// Attach `q` to every signal layer. nullptr detaches.
  void set_signal_quantizer(const SignalQuantizer* q);

  /// Sum of lambda-weighted regularizer penalties from the last training
  /// forward pass (the sum_i lambda_i Rg(O_i) term of Eq 2).
  float signal_penalty();

  /// Per-sample argmax class prediction for a batch of inputs.
  std::vector<int64_t> predict(const Tensor& batch);

  /// Layer type names in order, for diagnostics.
  std::vector<std::string> layer_names() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace qsnc::nn
