#include "nn/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "nn/gemm_kernels.h"
#include "nn/simd.h"
#include "util/aligned.h"
#include "util/thread_pool.h"

namespace qsnc::nn {

namespace {
// Block extents chosen so one A-panel + one B-panel fit comfortably in L1/L2
// on typical x86 cores. The i-k-j loop order keeps the innermost loop a
// contiguous SAXPY over C and B rows, which GCC auto-vectorizes. The SIMD
// micro-kernels share the same extents (gemm_kernels.h); kBlockK in
// particular is part of gemm_a_bt_acc's numeric contract.
constexpr int64_t kBlockM = kernels::kBlockM;
constexpr int64_t kBlockK = kernels::kBlockK;
constexpr int64_t kBlockN = kernels::kBlockN;

// Minimum FLOP count (2*m*k*n) before a kernel fans out to the pool;
// below this the fork/join overhead dominates the multiply itself.
constexpr int64_t kParallelMinFlops = int64_t{1} << 18;

// Per-thread B-panel scratch. Each chunk packs the active B block into its
// own copy, so concurrent M-chunks share no mutable state and the panel
// rows sit contiguously for the SAXPY sweep.
thread_local std::vector<float> tl_pack;

// Per-thread 64-byte-aligned panel for the SIMD path. Packed once per call
// on the calling thread before any fan-out; workers only read it.
thread_local util::aligned_vector<float> tl_simd_panel;

float* simd_panel(int64_t k, int64_t n) {
  tl_simd_panel.resize(
      static_cast<size_t>(kernels::gemm_panel_floats(k, n)));
  return tl_simd_panel.data();
}

// Rows [i0, i1) of C += A*B under the shared blocking. The per-(i, j)
// accumulation order (k ascending) is independent of the row partition, so
// any split of [0, m) — including the serial single-chunk one — produces
// bit-identical results.
void gemm_acc_rows(const float* a, const float* b, float* c, int64_t k,
                   int64_t n, int64_t i0, int64_t i1) {
  std::vector<float>& pack = tl_pack;
  pack.resize(static_cast<size_t>(kBlockK * kBlockN));
  for (int64_t ib = i0; ib < i1; ib += kBlockM) {
    const int64_t ie = std::min(ib + kBlockM, i1);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const int64_t j1 = std::min(j0 + kBlockN, n);
        const int64_t jw = j1 - j0;
        for (int64_t kk = k0; kk < k1; ++kk) {
          std::memcpy(pack.data() + (kk - k0) * jw, b + kk * n + j0,
                      static_cast<size_t>(jw) * sizeof(float));
        }
        for (int64_t i = ib; i < ie; ++i) {
          float* crow = c + i * n + j0;
          const float* arow = a + i * k;
          for (int64_t kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;  // sparse activations are common here
            const float* brow = pack.data() + (kk - k0) * jw;
            for (int64_t j = 0; j < jw; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}
}  // namespace

void gemm_acc(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n) {
  if (simd::use_avx2()) {
    float* bp = simd_panel(k, n);
    kernels::pack_b_panel(b, k, n, bp);
    if (2 * m * k * n < kParallelMinFlops) {
      kernels::avx2_gemm_acc_rows(a, bp, c, k, n, 0, m);
      return;
    }
    util::parallel_for(0, m, kBlockM, [&](int64_t i0, int64_t i1) {
      kernels::avx2_gemm_acc_rows(a, bp, c, k, n, i0, i1);
    });
    return;
  }
  if (2 * m * k * n < kParallelMinFlops) {
    gemm_acc_rows(a, b, c, k, n, 0, m);
    return;
  }
  util::parallel_for(0, m, kBlockM, [&](int64_t i0, int64_t i1) {
    gemm_acc_rows(a, b, c, k, n, i0, i1);
  });
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  if (simd::use_avx2()) {
    float* bp = simd_panel(k, n);
    kernels::pack_b_panel(b, k, n, bp);
    if (2 * m * k * n < kParallelMinFlops) {
      std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
      kernels::avx2_gemm_acc_rows(a, bp, c, k, n, 0, m);
      return;
    }
    util::parallel_for(0, m, kBlockM, [&](int64_t i0, int64_t i1) {
      std::memset(c + i0 * n, 0,
                  static_cast<size_t>((i1 - i0) * n) * sizeof(float));
      kernels::avx2_gemm_acc_rows(a, bp, c, k, n, i0, i1);
    });
    return;
  }
  if (2 * m * k * n < kParallelMinFlops) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    gemm_acc_rows(a, b, c, k, n, 0, m);
    return;
  }
  util::parallel_for(0, m, kBlockM, [&](int64_t i0, int64_t i1) {
    std::memset(c + i0 * n, 0,
                static_cast<size_t>((i1 - i0) * n) * sizeof(float));
    gemm_acc_rows(a, b, c, k, n, i0, i1);
  });
}

void gemm_at_b_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  // A stored [k x m]: element A^T(i, kk) = a[kk * m + i].
  //
  // The schedule is chosen from the problem shape only — never the pool
  // size — so results are bit-identical at any thread count:
  //  * wide M: partition the output rows; each chunk keeps the k-outer
  //    order (reading a contiguous a-row slice per kk) and writes disjoint
  //    C rows, so no synchronization and no reduction are needed.
  //  * narrow M over a deep K (e.g. a small dense head's dW): too few rows
  //    to spread, so split K into fixed kBlockK chunks accumulated into
  //    private C buffers and combined by a deterministic tree reduction.
  // The SIMD kernel mirrors the scalar per-(i, j) term order of whichever
  // path is taken, so the dispatch below is orthogonal to the path choice.
  const bool use_simd = simd::use_avx2();
  const bool split_k =
      m < 32 && k >= 2 * kBlockK && m * n <= (int64_t{1} << 18);
  if (!split_k) {
    if (use_simd) {
      float* bp = simd_panel(k, n);
      kernels::pack_b_panel(b, k, n, bp);
      if (2 * m * k * n < kParallelMinFlops) {
        kernels::avx2_gemm_at_b_acc_rows(a, bp, c, m, k, n, 0, m);
        return;
      }
      util::parallel_for(0, m, kBlockM / 4, [&](int64_t i0, int64_t i1) {
        kernels::avx2_gemm_at_b_acc_rows(a, bp, c, m, k, n, i0, i1);
      });
      return;
    }
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (int64_t i = i0; i < i1; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    };
    if (2 * m * k * n < kParallelMinFlops) {
      rows(0, m);
      return;
    }
    util::parallel_for(0, m, kBlockM / 4, rows);
    return;
  }

  const int64_t chunks = (k + kBlockK - 1) / kBlockK;
  const int64_t csize = m * n;
  std::vector<float> partials(static_cast<size_t>(chunks * csize), 0.0f);
  util::parallel_for(0, chunks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t ch = c0; ch < c1; ++ch) {
      float* pc = partials.data() + ch * csize;
      const int64_t kb = ch * kBlockK;
      const int64_t ke = std::min(kb + kBlockK, k);
      if (use_simd) {
        // Each chunk packs its own k-slice of B; the per-(i, j) term order
        // inside the chunk matches the scalar loop below, and the
        // cross-chunk combine is the same tree reduction either way.
        float* bp = simd_panel(ke - kb, n);
        kernels::pack_b_panel(b + kb * n, ke - kb, n, bp);
        kernels::avx2_gemm_at_b_acc_rows(a + kb * m, bp, pc, m, ke - kb, n,
                                         0, m);
        continue;
      }
      for (int64_t kk = kb; kk < ke; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (int64_t i = 0; i < m; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* prow = pc + i * n;
          for (int64_t j = 0; j < n; ++j) {
            prow[j] += av * brow[j];
          }
        }
      }
    }
  });
  // Tree reduction: pair (ch, ch + stride) in a fixed pattern set by the
  // chunk count alone, so the float summation order never varies.
  for (int64_t stride = 1; stride < chunks; stride *= 2) {
    const int64_t pairs = (chunks + 2 * stride - 1) / (2 * stride);
    util::parallel_for(0, pairs, 1, [&](int64_t p0, int64_t p1) {
      for (int64_t p = p0; p < p1; ++p) {
        const int64_t dst = p * 2 * stride;
        const int64_t src = dst + stride;
        if (src >= chunks) continue;
        float* d = partials.data() + dst * csize;
        const float* s = partials.data() + src * csize;
        for (int64_t e = 0; e < csize; ++e) d[e] += s[e];
      }
    });
  }
  for (int64_t e = 0; e < csize; ++e) c[e] += partials[static_cast<size_t>(e)];
}

void gemm_a_bt_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  // B stored [n x k]: element B^T(kk, j) = b[j * k + kk]. Blocked with the
  // shared extents so one A-panel plus the kBlockN B rows it dots against
  // stay cache-resident; per (i, j) the k-blocks accumulate in ascending
  // order regardless of the row partition (bit-identical at any pool size).
  if (simd::use_avx2()) {
    float* bp = simd_panel(k, n);
    kernels::pack_bt_panel(b, k, n, bp);
    if (2 * m * k * n < kParallelMinFlops) {
      kernels::avx2_gemm_a_bt_acc_rows(a, bp, c, k, n, 0, m);
      return;
    }
    util::parallel_for(0, m, kBlockM, [&](int64_t i0, int64_t i1) {
      kernels::avx2_gemm_a_bt_acc_rows(a, bp, c, k, n, i0, i1);
    });
    return;
  }
  auto rows = [&](int64_t i0, int64_t i1) {
    for (int64_t ib = i0; ib < i1; ib += kBlockM) {
      const int64_t ie = std::min(ib + kBlockM, i1);
      for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const int64_t k1 = std::min(k0 + kBlockK, k);
        for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const int64_t j1 = std::min(j0 + kBlockN, n);
          for (int64_t i = ib; i < ie; ++i) {
            const float* arow = a + i * k;
            float* crow = c + i * n;
            for (int64_t j = j0; j < j1; ++j) {
              const float* brow = b + j * k;
              float acc = 0.0f;
              for (int64_t kk = k0; kk < k1; ++kk) {
                acc += arow[kk] * brow[kk];
              }
              crow[j] += acc;
            }
          }
        }
      }
    }
  };
  if (2 * m * k * n < kParallelMinFlops) {
    rows(0, m);
    return;
  }
  util::parallel_for(0, m, kBlockM, rows);
}

}  // namespace qsnc::nn
