#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

namespace qsnc::nn {

namespace {
// Block extents chosen so one A-panel + one B-panel fit comfortably in L1/L2
// on typical x86 cores. The i-k-j loop order keeps the innermost loop a
// contiguous SAXPY over C and B rows, which GCC auto-vectorizes.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 128;
constexpr int64_t kBlockN = 256;
}  // namespace

void gemm_acc(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const int64_t i1 = std::min(i0 + kBlockM, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const int64_t j1 = std::min(j0 + kBlockN, n);
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (int64_t kk = k0; kk < k1; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;  // sparse activations are common here
            const float* brow = b + kk * n;
            for (int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  gemm_acc(a, b, c, m, k, n);
}

void gemm_at_b_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  // A stored [k x m]: element A^T(i, kk) = a[kk * m + i].
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_a_bt_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  // B stored [n x k]: element B^T(kk, j) = b[j * k + kk].
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += arow[kk] * brow[kk];
      }
      crow[j] += acc;
    }
  }
}

}  // namespace qsnc::nn
