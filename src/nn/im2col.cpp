#include "nn/im2col.h"

#include <stdexcept>

namespace qsnc::nn {

int64_t conv_out_extent(int64_t in, int64_t kernel, int64_t stride,
                        int64_t pad) {
  const int64_t out = (in + 2 * pad - kernel) / stride + 1;
  if (out <= 0) {
    throw std::invalid_argument("conv_out_extent: non-positive output extent");
  }
  return out;
}

void im2col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kh, int64_t kw, int64_t stride, int64_t pad,
            float* cols) {
  const int64_t out_h = conv_out_extent(height, kh, stride, pad);
  const int64_t out_w = conv_out_extent(width, kw, stride, pad);
  const int64_t out_hw = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    const float* plane = image + c * height * width;
    for (int64_t ky = 0; ky < kh; ++ky) {
      for (int64_t kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = cols + row * out_hw;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            for (int64_t ox = 0; ox < out_w; ++ox) {
              out_row[oy * out_w + ox] = 0.0f;
            }
            continue;
          }
          const float* in_row = plane + iy * width;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const int64_t ix = ox * stride - pad + kx;
            out_row[oy * out_w + ox] =
                (ix >= 0 && ix < width) ? in_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad,
            float* image) {
  const int64_t out_h = conv_out_extent(height, kh, stride, pad);
  const int64_t out_w = conv_out_extent(width, kw, stride, pad);
  const int64_t out_hw = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (int64_t ky = 0; ky < kh; ++ky) {
      for (int64_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = cols + row * out_hw;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) continue;
          float* img_row = plane + iy * width;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const int64_t ix = ox * stride - pad + kx;
            if (ix >= 0 && ix < width) {
              img_row[ix] += in_row[oy * out_w + ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace qsnc::nn
