// Internal interface between the GEMM entry points (gemm.cpp / igemm.cpp)
// and the AVX2 micro-kernel translation units (gemm_avx2.cpp /
// igemm_avx2.cpp), which are the only files compiled with -mavx2.
//
// Bit-exactness contract (fp32): every kernel here must reproduce the
// scalar reference loops in gemm.cpp bit-for-bit —
//   * separate multiply and add, never FMA (the scalar TUs are compiled
//     without -mfma, so contraction would change the rounding);
//   * per output element (i, j) the k terms accumulate in ascending order,
//     with the same per-variant k-block accumulator structure;
//   * the zero-skip test (`a == 0.0f` skips a k term) matches per variant:
//     present in gemm/gemm_acc and gemm_at_b_acc, absent in gemm_a_bt_acc.
// Vectorizing across j keeps each j lane's term sequence identical to the
// scalar loop, so the only change is how many (i, j) cells advance per
// instruction. Integer kernels are exact, so any schedule is bit-equal.
#pragma once

#include <cstdint>

namespace qsnc::nn::kernels {

// Cache-block extents shared by the scalar reference and the SIMD path.
// gemm_a_bt_acc's per-(i, j) accumulator resets at kBlockK boundaries, so
// the constant is part of the numeric contract, not just a tuning knob.
inline constexpr int64_t kBlockM = 64;
inline constexpr int64_t kBlockK = 128;
inline constexpr int64_t kBlockN = 256;

// Register tile of the fp32 micro-kernels: kMR C rows by kNR C columns
// (two 8-float vectors) held in ymm registers.
inline constexpr int64_t kMR = 4;
inline constexpr int64_t kNR = 16;

/// Floats in a packed B panel for a k-deep, n-wide operand: kNR-wide column
/// tiles (the last zero-padded), each storing k consecutive rows of kNR
/// lanes. Both pack functions below emit this layout.
int64_t gemm_panel_floats(int64_t k, int64_t n);

/// Packs row-major B[k x n] into tile-major layout:
///   panel[(j / kNR) * k * kNR + kk * kNR + (j % kNR)] = b[kk * n + j]
/// Padded lanes are zero. `panel` must be 64-byte aligned.
void pack_b_panel(const float* b, int64_t k, int64_t n, float* panel);

/// Same layout from a transposed operand B stored [n x k] (gemm_a_bt_acc):
///   panel[(j / kNR) * k * kNR + kk * kNR + (j % kNR)] = b[j * k + kk].
void pack_bt_panel(const float* b, int64_t k, int64_t n, float* panel);

/// Rows [i0, i1) of C[. x n] += A[. x k] * B[k x n] (A row-major, B from
/// pack_b_panel), bit-identical to gemm_acc_rows in gemm.cpp.
void avx2_gemm_acc_rows(const float* a, const float* b_panel, float* c,
                        int64_t k, int64_t n, int64_t i0, int64_t i1);

/// Rows [i0, i1) of C[m x n] += A^T * B with A stored [k x m] and B from
/// pack_b_panel, bit-identical to the wide-M path of gemm_at_b_acc (also
/// reused for one split-k chunk by shifting a/b to the chunk's k range).
void avx2_gemm_at_b_acc_rows(const float* a, const float* b_panel, float* c,
                             int64_t m, int64_t k, int64_t n, int64_t i0,
                             int64_t i1);

/// Rows [i0, i1) of C[. x n] += A * B^T with B stored [n x k], reading B
/// from the pack_bt_panel layout; bit-identical to the gemm_a_bt_acc
/// reference (fresh accumulator per kBlockK block, no zero-skip).
void avx2_gemm_a_bt_acc_rows(const float* a, const float* bt_panel, float* c,
                             int64_t k, int64_t n, int64_t i0, int64_t i1);

// ---- integer kernels (exact int32 accumulation; no rounding concerns) ----

// Integer register tile: kIMR C rows by kINR int32 accumulator lanes
// (two 8-lane vectors); B is packed in k-pairs for vpmaddwd.
inline constexpr int64_t kIMR = 4;
inline constexpr int64_t kINR = 16;

/// Size in int16 of the packed B panel for a [k x n] int16 operand.
int64_t ib_panel_int16s(int64_t k, int64_t n);

/// Packs int16 B [k x n] for vpmaddwd: kINR-wide column tiles, k rounded up
/// to pairs, each 32-bit lane holding (b[kk][j], b[kk+1][j]); zero-padded.
void pack_ib_panel(const int16_t* b, int64_t k, int64_t n, int16_t* panel);

/// Rows [i0, i1) of C[. x n] (int32) += A[. x k] (int16) * B, with B read
/// from the pack_ib_panel layout. Caller guarantees no int32 overflow:
/// max|A| * max|B| * k < 2^31.
void avx2_igemm_acc_rows(const int16_t* a, const int16_t* b_panel, int32_t* c,
                         int64_t k, int64_t n, int64_t i0, int64_t i1);

/// acc[c] += vals[e] * panel[rows[e] * cols + c] over all events e — the
/// integer row-drive combine of the SNC event engine.
void avx2_iaccumulate_rows(const int32_t* rows, const int32_t* vals,
                           int64_t n_events, const int16_t* panel,
                           int64_t cols, int32_t* acc);

/// Batched integer row-drive combine: vals is event-major
/// [n_events x batch], acc image-major [batch x cols]; each event's level
/// row is widened to int32 once and reused across the batch. Exact int32
/// accumulation, so any schedule matches the scalar reference.
void avx2_iaccumulate_rows_batch(const int32_t* rows, const int32_t* vals,
                                 int64_t n_events, int64_t batch,
                                 const int16_t* panel, int64_t cols,
                                 int32_t* acc);

}  // namespace qsnc::nn::kernels
