#include "nn/initializer.h"

#include <cmath>
#include <stdexcept>

namespace qsnc::nn {

void he_normal(Tensor& w, int64_t fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in <= 0");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0f, stddev);
}

void xavier_uniform(Tensor& w, int64_t fan_in, int64_t fan_out, Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: non-positive fan");
  }
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-a, a);
}

void uniform(Tensor& w, float a, Rng& rng) {
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(-a, a);
}

}  // namespace qsnc::nn
