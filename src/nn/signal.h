// Hooks attached to inter-layer signal boundaries (activation layers).
//
// The paper's two signal-side mechanisms plug in here:
//  * SignalRegularizer — a differentiable penalty added to each inter-layer
//    signal during training (Eq 2's Rg term; the Neuron Convergence form is
//    Eq 3, and the l1 / truncated-l1 comparison forms of Fig 3 implement the
//    same interface).
//  * SignalQuantizer — a (non-differentiable) value mapping applied to the
//    signal in the forward pass, e.g. rounding to M-bit fixed integers.
//    Backward uses the straight-through estimator: gradients pass where the
//    quantizer is locally identity-like (inside its clip range) and are
//    zeroed where the value was clipped.
//
// Both hooks are non-owning observers from the layer's point of view; the
// objects themselves live in the QAT pipeline that configures the network.
#pragma once

namespace qsnc::nn {

/// Differentiable per-element penalty on an inter-layer signal value.
class SignalRegularizer {
 public:
  virtual ~SignalRegularizer() = default;

  /// Penalty contribution rg(o) of a single signal element.
  virtual float penalty(float o) const = 0;

  /// d rg / d o at the given value (subgradient at kinks).
  virtual float grad(float o) const = 0;

  /// Layer-weight lambda_i multiplying this regularizer in the loss (Eq 2).
  virtual float lambda() const = 0;
};

/// Forward-only value mapping applied at a signal boundary.
class SignalQuantizer {
 public:
  virtual ~SignalQuantizer() = default;

  /// Quantized value of a single signal element.
  virtual float apply(float o) const = 0;

  /// True when the straight-through estimator should pass gradient at o
  /// (i.e. o lies inside the quantizer's representable range).
  virtual bool pass_through(float o) const = 0;
};

}  // namespace qsnc::nn
