// Runtime ISA dispatch for the kernel layer.
//
// The SIMD micro-kernels in gemm_avx2.cpp / igemm_avx2.cpp are compiled in
// their own translation units with -mavx2 and selected here at runtime via
// CPUID, so the library still runs (on the scalar reference path) on any
// x86-64. Two overrides force the scalar path:
//   * QSNC_FORCE_SCALAR=1 in the environment (read once, at first dispatch);
//   * set_force_scalar(true), the programmatic knob the equivalence tests
//     flip to compare both paths inside one process.
// The scalar loops are the semantic reference: a SIMD kernel must produce
// bit-identical fp32 results (no FMA contraction, same per-element
// accumulation order, same zero-skip tests), so dispatch never changes bits
// — only speed.
#pragma once

namespace qsnc::nn::simd {

/// True when the CPU supports AVX2 *and* the AVX2 kernels were compiled in.
bool cpu_has_avx2();

/// True when kernels should take the AVX2 path: cpu_has_avx2() and neither
/// override is active.
bool use_avx2();

/// Programmatic scalar override (test hook); returns the previous value.
/// Layered on top of the environment knob: clearing it does not undo
/// QSNC_FORCE_SCALAR=1.
bool set_force_scalar(bool force);

/// True when QSNC_FORCE_SCALAR=1 was set in the environment at first use.
bool env_forced_scalar();

}  // namespace qsnc::nn::simd
