// Adam optimizer (Kingma & Ba 2015) with the same global gradient-norm
// clipping as Sgd. The experiment pipeline defaults to SGD (matching the
// era of the paper); Adam is provided for the substrate's completeness and
// the optimizer ablation.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace qsnc::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float max_grad_norm = 5.0f;  // 0 disables
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config);

  /// Applies one update using the gradients currently in each Param.
  void step();

  void zero_grad();

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }
  int64_t steps_taken() const { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamConfig config_;
  int64_t t_ = 0;
};

}  // namespace qsnc::nn
