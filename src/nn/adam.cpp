#include "nn/adam.h"

#include <cmath>

namespace qsnc::nn {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  float grad_scale = 1.0f;
  if (config_.max_grad_norm > 0.0f) {
    double sq = 0.0;
    for (Param* p : params_) sq += p->grad.squared_norm();
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > config_.max_grad_norm) {
      grad_scale = config_.max_grad_norm / norm;
    }
  }

  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    for (int64_t j = 0; j < p.value.numel(); ++j) {
      const float g =
          p.grad[j] * grad_scale + config_.weight_decay * p.value[j];
      m_[i][j] = config_.beta1 * m_[i][j] + (1.0f - config_.beta1) * g;
      v_[i][j] = config_.beta2 * v_[i][j] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m_[i][j] / bias1;
      const float v_hat = v_[i][j] / bias2;
      p.value[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace qsnc::nn
