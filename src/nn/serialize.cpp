#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "nn/layers/batchnorm.h"

namespace qsnc::nn {

namespace {

constexpr uint32_t kMagic = 0x51534e43;  // "QSNC"
constexpr uint32_t kVersion = 1;

// Collects pointers to every state tensor in deterministic order:
// leaf params first (network order), then BN running stats (network order).
std::vector<Tensor*> state_tensors(Network& net) {
  std::vector<Tensor*> out;
  for (Param* p : net.params()) out.push_back(&p->value);
  for (size_t i = 0; i < net.size(); ++i) {
    visit_layers(&net.layer(i), [&out](Layer* l) {
      if (auto* bn = dynamic_cast<BatchNorm2d*>(l)) {
        // const_cast is safe: we own the network mutably here.
        out.push_back(const_cast<Tensor*>(&bn->running_mean()));
        out.push_back(const_cast<Tensor*>(&bn->running_var()));
      }
    });
  }
  return out;
}

}  // namespace

NetworkState snapshot(Network& net) {
  NetworkState state;
  for (Tensor* t : state_tensors(net)) state.tensors.push_back(*t);
  return state;
}

void restore(Network& net, const NetworkState& state) {
  std::vector<Tensor*> dst = state_tensors(net);
  if (dst.size() != state.tensors.size()) {
    throw std::invalid_argument("restore: state tensor count mismatch");
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->shape() != state.tensors[i].shape()) {
      throw std::invalid_argument("restore: shape mismatch at tensor " +
                                  std::to_string(i));
    }
    *dst[i] = state.tensors[i];
  }
}

void save_state(Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_state: cannot open " + path);

  const NetworkState state = snapshot(net);
  auto write_u32 = [&f](uint32_t v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto write_i64 = [&f](int64_t v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };

  write_u32(kMagic);
  write_u32(kVersion);
  write_u32(static_cast<uint32_t>(state.tensors.size()));
  for (const Tensor& t : state.tensors) {
    write_u32(static_cast<uint32_t>(t.rank()));
    for (int64_t d : t.shape()) write_i64(d);
    f.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!f) throw std::runtime_error("save_state: write failed for " + path);
}

void load_state(Network& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_state: cannot open " + path);

  auto read_u32 = [&f]() {
    uint32_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_i64 = [&f]() {
    int64_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };

  if (read_u32() != kMagic) {
    throw std::runtime_error("load_state: bad magic in " + path);
  }
  if (read_u32() != kVersion) {
    throw std::runtime_error("load_state: unsupported version in " + path);
  }
  const uint32_t count = read_u32();
  NetworkState state;
  state.tensors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t rank = read_u32();
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) shape[d] = read_i64();
    Tensor t(shape);
    f.read(reinterpret_cast<char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
    state.tensors.push_back(std::move(t));
  }
  if (!f) throw std::runtime_error("load_state: truncated file " + path);
  restore(net, state);
}

}  // namespace qsnc::nn
