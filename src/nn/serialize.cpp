#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "nn/layers/batchnorm.h"
#include "util/crc32.h"

namespace qsnc::nn {

namespace {

constexpr uint32_t kMagic = 0x51534e43;  // "QSNC"
// v1: magic | version | payload.
// v2: magic | version | crc32(payload) | payload — truncation and bit
// flips are rejected before any tensor data is trusted. The payload
// layout (u32 count, then per-tensor u32 rank | i64 dims | f32 data) is
// identical in both versions, so v1 files remain readable.
constexpr uint32_t kVersion = 2;

// Collects pointers to every state tensor in deterministic order:
// leaf params first (network order), then BN running stats (network order).
std::vector<Tensor*> state_tensors(Network& net) {
  std::vector<Tensor*> out;
  for (Param* p : net.params()) out.push_back(&p->value);
  for (size_t i = 0; i < net.size(); ++i) {
    visit_layers(&net.layer(i), [&out](Layer* l) {
      if (auto* bn = dynamic_cast<BatchNorm2d*>(l)) {
        // const_cast is safe: we own the network mutably here.
        out.push_back(const_cast<Tensor*>(&bn->running_mean()));
        out.push_back(const_cast<Tensor*>(&bn->running_var()));
      }
    });
  }
  return out;
}

void append_bytes(std::vector<uint8_t>& buf, const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buf.insert(buf.end(), bytes, bytes + n);
}

/// Sequential little-endian reader over an in-memory payload with
/// hard bounds checks — a corrupt length can never read out of range.
class PayloadReader {
 public:
  PayloadReader(const std::vector<uint8_t>& buf, const std::string& path)
      : buf_(buf), path_(path) {}

  uint32_t read_u32() {
    uint32_t v = 0;
    read_raw(&v, sizeof(v));
    return v;
  }

  int64_t read_i64() {
    int64_t v = 0;
    read_raw(&v, sizeof(v));
    return v;
  }

  void read_raw(void* dst, size_t n) {
    if (n > buf_.size() - pos_) {
      throw std::runtime_error("load_state: truncated file " + path_);
    }
    std::memcpy(dst, buf_.data() + pos_, n);
    pos_ += n;
  }

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  const std::string& path_;
  size_t pos_ = 0;
};

NetworkState parse_payload(const std::vector<uint8_t>& payload,
                           const std::string& path) {
  PayloadReader reader(payload, path);
  const uint32_t count = reader.read_u32();
  NetworkState state;
  state.tensors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t rank = reader.read_u32();
    if (rank > 8) {
      throw std::runtime_error("load_state: corrupt tensor rank in " + path);
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) shape[d] = reader.read_i64();
    Tensor t(shape);
    reader.read_raw(t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
    state.tensors.push_back(std::move(t));
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("load_state: trailing bytes in " + path);
  }
  return state;
}

}  // namespace

NetworkState snapshot(Network& net) {
  NetworkState state;
  for (Tensor* t : state_tensors(net)) state.tensors.push_back(*t);
  return state;
}

void restore(Network& net, const NetworkState& state) {
  std::vector<Tensor*> dst = state_tensors(net);
  if (dst.size() != state.tensors.size()) {
    throw std::invalid_argument("restore: state tensor count mismatch");
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->shape() != state.tensors[i].shape()) {
      throw std::invalid_argument("restore: shape mismatch at tensor " +
                                  std::to_string(i));
    }
    *dst[i] = state.tensors[i];
  }
}

std::vector<uint8_t> save_state_bytes(Network& net) {
  const NetworkState state = snapshot(net);
  std::vector<uint8_t> payload;
  auto append_u32 = [&payload](uint32_t v) {
    append_bytes(payload, &v, sizeof(v));
  };
  auto append_i64 = [&payload](int64_t v) {
    append_bytes(payload, &v, sizeof(v));
  };

  append_u32(static_cast<uint32_t>(state.tensors.size()));
  for (const Tensor& t : state.tensors) {
    append_u32(static_cast<uint32_t>(t.rank()));
    for (int64_t d : t.shape()) append_i64(d);
    append_bytes(payload, t.data(),
                 static_cast<size_t>(t.numel()) * sizeof(float));
  }

  std::vector<uint8_t> out;
  out.reserve(12 + payload.size());
  const uint32_t crc = util::crc32(payload.data(), payload.size());
  append_bytes(out, &kMagic, sizeof(kMagic));
  append_bytes(out, &kVersion, sizeof(kVersion));
  append_bytes(out, &crc, sizeof(crc));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void load_state_bytes(Network& net, const std::vector<uint8_t>& bytes,
                      const std::string& what) {
  PayloadReader header(bytes, what);
  uint32_t magic = 0;
  uint32_t version = 0;
  try {
    header.read_raw(&magic, sizeof(magic));
    header.read_raw(&version, sizeof(version));
  } catch (const std::runtime_error&) {
    throw std::runtime_error("load_state: truncated header in " + what);
  }
  if (magic != kMagic) {
    throw std::runtime_error("load_state: bad magic in " + what);
  }
  if (version != 1 && version != 2) {
    throw std::runtime_error("load_state: unsupported version " +
                             std::to_string(version) + " in " + what);
  }
  size_t payload_at = 8;
  if (version == 2) {
    uint32_t expected_crc = 0;
    try {
      header.read_raw(&expected_crc, sizeof(expected_crc));
    } catch (const std::runtime_error&) {
      throw std::runtime_error("load_state: truncated header in " + what);
    }
    payload_at = 12;
    if (util::crc32(bytes.data() + payload_at,
                    bytes.size() - payload_at) != expected_crc) {
      throw std::runtime_error(
          "load_state: checksum mismatch (corrupt checkpoint) in " + what);
    }
  }
  const std::vector<uint8_t> payload(bytes.begin() +
                                         static_cast<ptrdiff_t>(payload_at),
                                     bytes.end());
  restore(net, parse_payload(payload, what));
}

void save_state(Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_state: cannot open " + path);
  const std::vector<uint8_t> bytes = save_state_bytes(net);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("save_state: write failed for " + path);
}

void load_state(Network& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_state: cannot open " + path);

  auto read_u32 = [&f, &path]() {
    uint32_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!f) throw std::runtime_error("load_state: truncated file " + path);
    return v;
  };

  if (read_u32() != kMagic) {
    throw std::runtime_error("load_state: bad magic in " + path);
  }
  const uint32_t version = read_u32();
  if (version != 1 && version != 2) {
    throw std::runtime_error("load_state: unsupported version " +
                             std::to_string(version) + " in " + path);
  }
  uint32_t expected_crc = 0;
  if (version == 2) expected_crc = read_u32();

  std::vector<uint8_t> payload(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  if (version == 2 &&
      util::crc32(payload.data(), payload.size()) != expected_crc) {
    throw std::runtime_error(
        "load_state: checksum mismatch (corrupt checkpoint) in " + path);
  }
  restore(net, parse_payload(payload, path));
}

}  // namespace qsnc::nn
