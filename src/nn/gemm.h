// Minimal single-threaded GEMM kernels used by the convolution and dense
// layers. Not a BLAS replacement: the goal is a dependency-free, cache-aware
// matrix multiply fast enough to train the mini model zoo on one CPU core.
#pragma once

#include <cstdint>

namespace qsnc::nn {

/// C[m x n] = A[m x k] * B[k x n]  (row-major, C overwritten).
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);

/// C[m x n] += A[m x k] * B[k x n]  (row-major, accumulate into C).
void gemm_acc(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n);

/// C[m x n] += A^T[m x k] * B[k x n] where A is stored [k x m] row-major.
void gemm_at_b_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

/// C[m x n] += A[m x k] * B^T[k x n] where B is stored [n x k] row-major.
void gemm_a_bt_acc(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

}  // namespace qsnc::nn
