#include "nn/optimizer.h"

#include <cmath>

namespace qsnc::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  float grad_scale = 1.0f;
  if (config_.max_grad_norm > 0.0f) {
    double sq = 0.0;
    for (Param* p : params_) sq += p->grad.squared_norm();
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > config_.max_grad_norm) {
      grad_scale = config_.max_grad_norm / norm;
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float lr = config_.lr;
    const float mu = config_.momentum;
    const float wd = config_.weight_decay;
    for (int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] * grad_scale + wd * p.value[j];
      v[j] = mu * v[j] - lr * g;
      p.value[j] += v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace qsnc::nn
