// AVX2 fp32 micro-kernels. This TU (and igemm_avx2.cpp) is the only place
// compiled with -mavx2; everything else stays generic x86-64 so the scalar
// reference keeps its pre-SIMD code generation.
//
// Bit-exactness with the scalar loops in gemm.cpp is achieved by
// construction (see gemm_kernels.h):
//   * multiplies and adds stay separate (`add(acc, mul(a, b))`) — the TU is
//     compiled with -mno-fma -ffp-contract=off so nothing fuses;
//   * vectors span the j (column) dimension only, so every output cell
//     accumulates exactly the scalar term sequence: k ascending, seeded
//     from the existing C value;
//   * the per-variant zero-skip (`a == 0.0f`) is tested on the same scalar
//     value the reference tests, and skipping is uniform across a row's
//     j lanes because it depends only on (i, k).
// Register tiles are kMR x kNR (4 rows x 16 columns = 8 ymm accumulators);
// B is consumed from the 64-byte-aligned column-tile panels packed once per
// call by gemm.cpp, and A is repacked per 4-row block into a [k x 4]
// transposed strip so broadcasts walk one contiguous buffer.
#include "nn/gemm_kernels.h"

#include <algorithm>
#include <cstring>

#include "util/aligned.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace qsnc::nn::kernels {

int64_t gemm_panel_floats(int64_t k, int64_t n) {
  const int64_t tiles = (n + kNR - 1) / kNR;
  return std::max<int64_t>(int64_t{1}, tiles * std::max<int64_t>(k, 1) * kNR);
}

void pack_b_panel(const float* b, int64_t k, int64_t n, float* panel) {
  for (int64_t jt = 0; jt * kNR < n; ++jt) {
    const int64_t j0 = jt * kNR;
    const int64_t jw = std::min(kNR, n - j0);
    float* tile = panel + jt * k * kNR;
    for (int64_t kk = 0; kk < k; ++kk) {
      float* dst = tile + kk * kNR;
      const float* src = b + kk * n + j0;
      int64_t j = 0;
      for (; j < jw; ++j) dst[j] = src[j];
      for (; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

void pack_bt_panel(const float* b, int64_t k, int64_t n, float* panel) {
  for (int64_t jt = 0; jt * kNR < n; ++jt) {
    const int64_t j0 = jt * kNR;
    float* tile = panel + jt * k * kNR;
    for (int64_t jj = 0; jj < kNR; ++jj) {
      const int64_t j = j0 + jj;
      if (j < n) {
        const float* brow = b + j * k;
        for (int64_t kk = 0; kk < k; ++kk) tile[kk * kNR + jj] = brow[kk];
      } else {
        for (int64_t kk = 0; kk < k; ++kk) tile[kk * kNR + jj] = 0.0f;
      }
    }
  }
}

#if defined(__AVX2__)

namespace {

// Per-thread [k x kMR] transposed A strip for the broadcast stream.
thread_local util::aligned_vector<float> tl_astrip;

float* astrip(int64_t k) {
  tl_astrip.resize(static_cast<size_t>(std::max<int64_t>(k, 1) * kMR));
  return tl_astrip.data();
}

// C(4 x 16) += A-strip * B-tile over kk in [0, k), skipping zero A values.
// c rows are read first (the scalar accumulation seed), updated in
// registers, and stored once.
inline void mk4x16_skip(const float* ap, const float* bt, int64_t k, float* c0,
                        float* c1, float* c2, float* c3) {
  __m256 a00 = _mm256_loadu_ps(c0), a01 = _mm256_loadu_ps(c0 + 8);
  __m256 a10 = _mm256_loadu_ps(c1), a11 = _mm256_loadu_ps(c1 + 8);
  __m256 a20 = _mm256_loadu_ps(c2), a21 = _mm256_loadu_ps(c2 + 8);
  __m256 a30 = _mm256_loadu_ps(c3), a31 = _mm256_loadu_ps(c3 + 8);
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_load_ps(bt + kk * kNR);
    const __m256 b1 = _mm256_load_ps(bt + kk * kNR + 8);
    const float* av = ap + kk * kMR;
    if (av[0] != 0.0f) {
      const __m256 v = _mm256_set1_ps(av[0]);
      a00 = _mm256_add_ps(a00, _mm256_mul_ps(v, b0));
      a01 = _mm256_add_ps(a01, _mm256_mul_ps(v, b1));
    }
    if (av[1] != 0.0f) {
      const __m256 v = _mm256_set1_ps(av[1]);
      a10 = _mm256_add_ps(a10, _mm256_mul_ps(v, b0));
      a11 = _mm256_add_ps(a11, _mm256_mul_ps(v, b1));
    }
    if (av[2] != 0.0f) {
      const __m256 v = _mm256_set1_ps(av[2]);
      a20 = _mm256_add_ps(a20, _mm256_mul_ps(v, b0));
      a21 = _mm256_add_ps(a21, _mm256_mul_ps(v, b1));
    }
    if (av[3] != 0.0f) {
      const __m256 v = _mm256_set1_ps(av[3]);
      a30 = _mm256_add_ps(a30, _mm256_mul_ps(v, b0));
      a31 = _mm256_add_ps(a31, _mm256_mul_ps(v, b1));
    }
  }
  _mm256_storeu_ps(c0, a00);
  _mm256_storeu_ps(c0 + 8, a01);
  _mm256_storeu_ps(c1, a10);
  _mm256_storeu_ps(c1 + 8, a11);
  _mm256_storeu_ps(c2, a20);
  _mm256_storeu_ps(c2 + 8, a21);
  _mm256_storeu_ps(c3, a30);
  _mm256_storeu_ps(c3 + 8, a31);
}

// Single-row variant of mk4x16_skip; ap has stride 1.
inline void mk1x16_skip(const float* ap, const float* bt, int64_t k,
                        float* c0) {
  __m256 a00 = _mm256_loadu_ps(c0), a01 = _mm256_loadu_ps(c0 + 8);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float av = ap[kk];
    if (av == 0.0f) continue;
    const __m256 v = _mm256_set1_ps(av);
    a00 = _mm256_add_ps(
        a00, _mm256_mul_ps(v, _mm256_load_ps(bt + kk * kNR)));
    a01 = _mm256_add_ps(
        a01, _mm256_mul_ps(v, _mm256_load_ps(bt + kk * kNR + 8)));
  }
  _mm256_storeu_ps(c0, a00);
  _mm256_storeu_ps(c0 + 8, a01);
}

// Shared row driver for the two skip variants (gemm_acc and at_b differ
// only in how the A strip is packed). Tail column tiles bounce C through a
// zero-padded stack buffer so the accumulation still seeds from C; the
// padded B lanes are zero, leaving the padded accumulators untouched.
template <typename PackStrip4, typename PackStrip1>
void skip_rows_driver(const float* b_panel, float* c, int64_t k, int64_t n,
                      int64_t i0, int64_t i1, PackStrip4&& pack4,
                      PackStrip1&& pack1) {
  float* ap = astrip(k);
  const int64_t tiles = (n + kNR - 1) / kNR;
  for (int64_t ib = i0; ib < i1; ib += kMR) {
    if (i1 - ib >= kMR) {
      pack4(ib, ap);
      for (int64_t jt = 0; jt < tiles; ++jt) {
        const int64_t j0 = jt * kNR;
        const int64_t jw = std::min(kNR, n - j0);
        const float* bt = b_panel + jt * k * kNR;
        if (jw == kNR) {
          mk4x16_skip(ap, bt, k, c + ib * n + j0, c + (ib + 1) * n + j0,
                      c + (ib + 2) * n + j0, c + (ib + 3) * n + j0);
        } else {
          alignas(64) float cbuf[kMR * kNR] = {};
          for (int64_t r = 0; r < kMR; ++r) {
            std::memcpy(cbuf + r * kNR, c + (ib + r) * n + j0,
                        static_cast<size_t>(jw) * sizeof(float));
          }
          mk4x16_skip(ap, bt, k, cbuf, cbuf + kNR, cbuf + 2 * kNR,
                      cbuf + 3 * kNR);
          for (int64_t r = 0; r < kMR; ++r) {
            std::memcpy(c + (ib + r) * n + j0, cbuf + r * kNR,
                        static_cast<size_t>(jw) * sizeof(float));
          }
        }
      }
    } else {
      for (int64_t i = ib; i < i1; ++i) {
        pack1(i, ap);
        for (int64_t jt = 0; jt < tiles; ++jt) {
          const int64_t j0 = jt * kNR;
          const int64_t jw = std::min(kNR, n - j0);
          const float* bt = b_panel + jt * k * kNR;
          if (jw == kNR) {
            mk1x16_skip(ap, bt, k, c + i * n + j0);
          } else {
            alignas(64) float cbuf[kNR] = {};
            std::memcpy(cbuf, c + i * n + j0,
                        static_cast<size_t>(jw) * sizeof(float));
            mk1x16_skip(ap, bt, k, cbuf);
            std::memcpy(c + i * n + j0, cbuf,
                        static_cast<size_t>(jw) * sizeof(float));
          }
        }
      }
    }
  }
}

// C(rows x 16) += A * B^T over one kBlockK block: fresh accumulators, no
// zero-skip, one add into C per block — the gemm_a_bt_acc contract. `rows`
// may be 1..4; arow[r] walks A contiguously.
inline void mkNx16_block(const float* const* arow, int64_t rows,
                         const float* bt, int64_t kb, float* const* crow,
                         int64_t jw) {
  __m256 acc[kMR][2];
  for (int64_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kb; ++kk) {
    const __m256 b0 = _mm256_load_ps(bt + kk * kNR);
    const __m256 b1 = _mm256_load_ps(bt + kk * kNR + 8);
    for (int64_t r = 0; r < rows; ++r) {
      const __m256 v = _mm256_set1_ps(arow[r][kk]);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(v, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(v, b1));
    }
  }
  if (jw == kNR) {
    for (int64_t r = 0; r < rows; ++r) {
      _mm256_storeu_ps(crow[r],
                       _mm256_add_ps(_mm256_loadu_ps(crow[r]), acc[r][0]));
      _mm256_storeu_ps(
          crow[r] + 8,
          _mm256_add_ps(_mm256_loadu_ps(crow[r] + 8), acc[r][1]));
    }
  } else {
    alignas(64) float abuf[kNR];
    for (int64_t r = 0; r < rows; ++r) {
      _mm256_store_ps(abuf, acc[r][0]);
      _mm256_store_ps(abuf + 8, acc[r][1]);
      for (int64_t j = 0; j < jw; ++j) crow[r][j] += abuf[j];
    }
  }
}

}  // namespace

void avx2_gemm_acc_rows(const float* a, const float* b_panel, float* c,
                        int64_t k, int64_t n, int64_t i0, int64_t i1) {
  skip_rows_driver(
      b_panel, c, k, n, i0, i1,
      [&](int64_t ib, float* ap) {
        for (int64_t r = 0; r < kMR; ++r) {
          const float* arow = a + (ib + r) * k;
          for (int64_t kk = 0; kk < k; ++kk) ap[kk * kMR + r] = arow[kk];
        }
      },
      [&](int64_t i, float* ap) {
        std::memcpy(ap, a + i * k, static_cast<size_t>(k) * sizeof(float));
      });
}

void avx2_gemm_at_b_acc_rows(const float* a, const float* b_panel, float* c,
                             int64_t m, int64_t k, int64_t n, int64_t i0,
                             int64_t i1) {
  skip_rows_driver(
      b_panel, c, k, n, i0, i1,
      [&](int64_t ib, float* ap) {
        for (int64_t kk = 0; kk < k; ++kk) {
          std::memcpy(ap + kk * kMR, a + kk * m + ib, kMR * sizeof(float));
        }
      },
      [&](int64_t i, float* ap) {
        for (int64_t kk = 0; kk < k; ++kk) ap[kk] = a[kk * m + i];
      });
}

void avx2_gemm_a_bt_acc_rows(const float* a, const float* bt_panel, float* c,
                             int64_t k, int64_t n, int64_t i0, int64_t i1) {
  const int64_t tiles = (n + kNR - 1) / kNR;
  const float* arow[kMR];
  float* crow[kMR];
  for (int64_t ib = i0; ib < i1; ib += kMR) {
    const int64_t rows = std::min(kMR, i1 - ib);
    for (int64_t jt = 0; jt < tiles; ++jt) {
      const int64_t j0 = jt * kNR;
      const int64_t jw = std::min(kNR, n - j0);
      const float* bt = bt_panel + jt * k * kNR;
      for (int64_t r = 0; r < rows; ++r) {
        arow[r] = a + (ib + r) * k;
        crow[r] = c + (ib + r) * n + j0;
      }
      for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const int64_t kb = std::min(kBlockK, k - k0);
        mkNx16_block(arow, rows, bt + k0 * kNR, kb, crow, jw);
        for (int64_t r = 0; r < rows; ++r) arow[r] += kb;
      }
    }
  }
}

#else  // !__AVX2__ — stubs; dispatch never selects these without AVX2.

void avx2_gemm_acc_rows(const float*, const float*, float*, int64_t, int64_t,
                        int64_t, int64_t) {}
void avx2_gemm_at_b_acc_rows(const float*, const float*, float*, int64_t,
                             int64_t, int64_t, int64_t, int64_t) {}
void avx2_gemm_a_bt_acc_rows(const float*, const float*, float*, int64_t,
                             int64_t, int64_t, int64_t) {}

#endif  // __AVX2__

}  // namespace qsnc::nn::kernels
