// Dense float tensor used throughout the qsnc library.
//
// Layout is row-major with the conventional NCHW interpretation for
// 4-D activations and OIHW for convolution weights. The class is a thin,
// value-semantic wrapper over a contiguous std::vector<float>; it never
// aliases and copies are deep, which keeps layer implementations easy to
// reason about at the cost of some copying (acceptable at the model sizes
// this reproduction targets).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/aligned.h"

namespace qsnc::nn {

/// Shape of a tensor: a short list of non-negative extents.
using Shape = std::vector<int64_t>;

/// Backing storage of a Tensor: data() is 64-byte aligned so packed kernel
/// panels and aligned SIMD loads are safe on any tensor buffer.
using FloatBuffer = util::aligned_vector<float>;

/// Returns the number of elements implied by a shape (1 for rank-0).
int64_t shape_numel(const Shape& shape);

/// Human-readable form, e.g. "[2, 3, 28, 28]".
std::string shape_to_string(const Shape& shape);

/// Dense float tensor with value semantics.
class Tensor {
 public:
  /// Empty rank-0 tensor with a single zero element is NOT created;
  /// a default tensor has no elements and empty shape.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor of the given shape copying `values` into aligned storage
  /// (size must match).
  Tensor(Shape shape, const std::vector<float>& values);

  /// Convenience 1-D constructor: Tensor::vector({1.f, 2.f}).
  static Tensor from_vector(std::vector<float> values);

  const Shape& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Extent of dimension `d` (negative d counts from the back).
  int64_t dim(int64_t d) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  FloatBuffer& vec() { return data_; }
  const FloatBuffer& vec() const { return data_; }

  /// Flat element access with bounds checking in debug builds.
  float& operator[](int64_t i);
  float operator[](int64_t i) const;

  /// 2-D access (rank must be 2).
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;

  /// 4-D NCHW access (rank must be 4).
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// Returns a tensor with the same data and a new shape.
  /// numel must be preserved. One dimension may be -1 (inferred).
  Tensor reshape(Shape new_shape) const;

  /// In-place fill.
  void fill(float value);

  /// In-place element-wise operations (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Element-wise binary ops returning new tensors.
  friend Tensor operator+(Tensor lhs, const Tensor& rhs);
  friend Tensor operator-(Tensor lhs, const Tensor& rhs);
  friend Tensor operator*(Tensor lhs, float scalar);

  /// Reductions.
  float sum() const;
  float min() const;
  float max() const;
  float abs_max() const;
  float mean() const;

  /// Index of the maximum element (first on ties). Requires numel > 0.
  int64_t argmax() const;

  /// Squared L2 norm of all elements.
  float squared_norm() const;

  /// True when shapes are equal and all elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  void check_index(int64_t i) const;

  Shape shape_;
  FloatBuffer data_;
};

}  // namespace qsnc::nn
