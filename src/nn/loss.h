// Classification loss: numerically stable softmax cross-entropy.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace qsnc::nn {

struct LossResult {
  float loss = 0.0f;   // mean over the batch
  Tensor grad;         // dLoss/dLogits, [N, K]
};

/// Mean softmax cross-entropy over a batch of logits [N, K] against integer
/// class labels in [0, K).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels);

/// Softmax probabilities of one logits row (utility for examples/tests).
std::vector<float> softmax(const float* logits, int64_t k);

}  // namespace qsnc::nn
