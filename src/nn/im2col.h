// im2col / col2im transforms used to express convolution as GEMM.
//
// For an input of shape [C, H, W] and a (kh x kw) kernel with the given
// stride and padding, im2col produces a matrix of shape
// [C*kh*kw, out_h*out_w] (row-major) whose columns are the flattened
// receptive fields; the convolution is then weights[OC, C*kh*kw] x cols.
#pragma once

#include <cstdint>

namespace qsnc::nn {

/// Output spatial extent for one axis: floor((in + 2*pad - kernel)/stride)+1.
int64_t conv_out_extent(int64_t in, int64_t kernel, int64_t stride,
                        int64_t pad);

/// Expands one image [channels, height, width] into `cols`
/// [channels*kh*kw, out_h*out_w]. Out-of-bounds (padding) taps read as 0.
void im2col(const float* image, int64_t channels, int64_t height,
            int64_t width, int64_t kh, int64_t kw, int64_t stride, int64_t pad,
            float* cols);

/// Scatters `cols` (same layout as produced by im2col) back into an image
/// gradient buffer [channels, height, width], accumulating overlapping taps.
/// The image buffer must be zeroed by the caller beforehand.
void col2im(const float* cols, int64_t channels, int64_t height, int64_t width,
            int64_t kh, int64_t kw, int64_t stride, int64_t pad, float* image);

}  // namespace qsnc::nn
