// SGD optimizer with classical momentum and decoupled L2 weight decay
// (the R(W) term of the paper's Eq 2 in its most common concrete form).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace qsnc::nn {

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;  // lambda for the L2 term of Eq 2
  /// Global gradient-norm ceiling applied before each step (0 disables).
  /// The signal-unit input convention (pixels scaled to the integer spike
  /// range) makes early epochs noisy; clipping keeps training stable
  /// across initialization seeds.
  float max_grad_norm = 5.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  /// Applies one update step using the gradients currently accumulated in
  /// each Param, then leaves gradients untouched (call zero_grad next).
  void step();

  void zero_grad();

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace qsnc::nn
