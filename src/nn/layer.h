// Layer abstraction: every network component implements forward/backward
// over batched tensors and exposes its trainable parameters.
//
// The training loop in qsnc is layer-based rather than tape-based autograd:
// each layer caches whatever it needs from the forward pass and consumes the
// upstream gradient in backward. This keeps the substrate small, explicit,
// and easy to instrument — which matters here, because the paper's Neuron
// Convergence regularizer injects gradients at *layer boundaries* (the
// inter-layer signals), a hook the Network class exposes via is_signal().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace qsnc::nn {

/// A trainable parameter: the value and its accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class for all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch. When `train` is true the layer
  /// caches activations needed by backward and updates any running
  /// statistics (batch norm).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Consumes dLoss/dOutput, accumulates parameter gradients, and returns
  /// dLoss/dInput. Must be called after a forward(..., train=true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Short type name for diagnostics, e.g. "Conv2d".
  virtual std::string name() const = 0;

  /// True for layers whose output is an inter-layer signal in the paper's
  /// sense (activation layers). The Neuron Convergence regularizer applies
  /// only at these boundaries, and the SNC deployment quantizes exactly
  /// these tensors into spike counts.
  virtual bool is_signal() const { return false; }

  /// Direct sub-layers of composite layers (residual blocks). Enables
  /// recursive traversal so signal hooks reach activations at any depth.
  virtual std::vector<Layer*> children() { return {}; }
};

/// Depth-first traversal over `root` and all transitive children.
template <typename Fn>
void visit_layers(Layer* root, Fn&& fn) {
  fn(root);
  for (Layer* child : root->children()) {
    visit_layers(child, fn);
  }
}

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace qsnc::nn
