#include "nn/layers/relu.h"

#include <stdexcept>

namespace qsnc::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor output(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) {
    output[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }

  last_penalty_ = 0.0f;
  if (train) {
    mask_ = Tensor(input.shape());
    for (int64_t i = 0; i < input.numel(); ++i) {
      mask_[i] = input[i] > 0.0f ? 1.0f : 0.0f;
    }
    if (regularizer_ != nullptr || quantizer_ != nullptr) {
      pre_quant_ = output;
    }
    if (regularizer_ != nullptr) {
      // Penalty and its gradient are evaluated on the *signal* (post-ReLU)
      // values, because that is the tensor the SNC will rate-code. The sum
      // is mean-normalized so the effective per-layer weight lambda_i of
      // Eq 2 is lambda / numel — dimensionless and layer-size independent.
      float acc = 0.0f;
      for (int64_t i = 0; i < output.numel(); ++i) {
        acc += regularizer_->penalty(output[i]);
      }
      last_penalty_ =
          regularizer_->lambda() * acc / static_cast<float>(output.numel());
    }
  }

  if (quantizer_ != nullptr) {
    for (int64_t i = 0; i < output.numel(); ++i) {
      output[i] = quantizer_->apply(output[i]);
    }
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (mask_.empty()) {
    throw std::logic_error("ReLU::backward before forward(train=true)");
  }
  Tensor grad_input(grad_output.shape());
  const float reg_scale =
      regularizer_ != nullptr
          ? regularizer_->lambda() / static_cast<float>(grad_output.numel())
          : 0.0f;
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    float g = grad_output[i];
    if (quantizer_ != nullptr) {
      // Straight-through estimator: stop gradient where the value was
      // clipped out of the representable range.
      if (!quantizer_->pass_through(pre_quant_[i])) g = 0.0f;
    }
    if (regularizer_ != nullptr) {
      g += reg_scale * regularizer_->grad(pre_quant_[i]);
    }
    grad_input[i] = g * mask_[i];
  }
  return grad_input;
}

}  // namespace qsnc::nn
