#include "nn/layers/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace qsnc::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor({channels}, 1.0f)),
      beta_("bn.beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d::forward: expected [N," +
                                std::to_string(channels_) + ",H,W]");
  }
  const int64_t batch = input.dim(0);
  const int64_t hw = input.dim(2) * input.dim(3);
  const int64_t per_channel = batch * hw;

  Tensor output(input.shape());

  if (train) {
    input_shape_ = input.shape();
    batch_mean_ = Tensor({channels_});
    batch_var_ = Tensor({channels_});
    x_hat_ = Tensor(input.shape());

    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) sum += plane[i];
      }
      const float mean = static_cast<float>(sum / per_channel);
      double var_sum = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const double d = plane[i] - mean;
          var_sum += d * d;
        }
      }
      const float var = static_cast<float>(var_sum / per_channel);
      batch_mean_[c] = mean;
      batch_var_[c] = var;
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var;

      const float inv_std = 1.0f / std::sqrt(var + eps_);
      const float g = gamma_.value[c];
      const float b = beta_.value[c];
      for (int64_t n = 0; n < batch; ++n) {
        const float* in_plane = input.data() + (n * channels_ + c) * hw;
        float* xh_plane = x_hat_.data() + (n * channels_ + c) * hw;
        float* out_plane = output.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const float xh = (in_plane[i] - mean) * inv_std;
          xh_plane[i] = xh;
          out_plane[i] = g * xh + b;
        }
      }
    }
  } else {
    for (int64_t c = 0; c < channels_; ++c) {
      float scale, shift;
      inference_affine(c, &scale, &shift);
      for (int64_t n = 0; n < batch; ++n) {
        const float* in_plane = input.data() + (n * channels_ + c) * hw;
        float* out_plane = output.data() + (n * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          out_plane[i] = scale * in_plane[i] + shift;
        }
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (x_hat_.empty()) {
    throw std::logic_error("BatchNorm2d::backward before forward(train=true)");
  }
  const int64_t batch = input_shape_[0];
  const int64_t hw = input_shape_[2] * input_shape_[3];
  const int64_t per_channel = batch * hw;
  const float inv_m = 1.0f / static_cast<float>(per_channel);

  Tensor grad_input(input_shape_);
  for (int64_t c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(batch_var_[c] + eps_);
    const float g = gamma_.value[c];

    // Accumulate dGamma, dBeta, and the two reduction terms of dX.
    double dgamma = 0.0, dbeta = 0.0, sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * hw;
      const float* xh = x_hat_.data() + (n * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        dgamma += dy[i] * xh[i];
        dbeta += dy[i];
      }
    }
    sum_dy = dbeta;
    sum_dy_xhat = dgamma;
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    // dX = (g * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
    const float k = g * inv_std * inv_m;
    const float m = static_cast<float>(per_channel);
    for (int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * hw;
      const float* xh = x_hat_.data() + (n * channels_ + c) * hw;
      float* dx = grad_input.data() + (n * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        dx[i] = k * (m * dy[i] - static_cast<float>(sum_dy) -
                     xh[i] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return grad_input;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

void BatchNorm2d::reset_to_identity() {
  gamma_.value.fill(1.0f);
  beta_.value.fill(0.0f);
  running_mean_.fill(0.0f);
  running_var_.fill(1.0f - eps_);
}

void BatchNorm2d::inference_affine(int64_t channel, float* scale,
                                   float* shift) const {
  const float inv_std = 1.0f / std::sqrt(running_var_[channel] + eps_);
  *scale = gamma_.value[channel] * inv_std;
  *shift = beta_.value[channel] - gamma_.value[channel] *
                                      running_mean_[channel] * inv_std;
}

}  // namespace qsnc::nn
