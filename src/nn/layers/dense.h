// Fully connected layer: y = x W^T + b with x [N, in], W [out, in].
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/rng.h"

namespace qsnc::nn {

class Dense : public Layer {
 public:
  Dense(int64_t in_features, int64_t out_features, Rng& rng,
        bool use_bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Dense"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;

  Param weight_;  // [out, in]
  Param bias_;    // [out]

  Tensor input_cache_;  // [N, in]
};

}  // namespace qsnc::nn
