// 2-D convolution layer (NCHW), implemented as im2col + GEMM.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/rng.h"

namespace qsnc::nn {

class Conv2d : public Layer {
 public:
  /// Square kernel of extent `kernel`, stride and symmetric zero padding.
  /// Weights are OIHW [out_channels, in_channels, kernel, kernel] with
  /// He-normal init; bias is zero-initialized (disable with `use_bias`).
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t pad, Rng& rng, bool use_bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2d"; }

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool uses_bias() const { return use_bias_; }

  /// Enables the bias term on a conv built without one (the bias tensor
  /// exists zero-initialized either way). Batch-norm folding uses this to
  /// absorb the BN shift into the convolution.
  void enable_bias() { use_bias_ = true; }

  /// Input cached by the latest forward(train=true); the SNC mapper probes
  /// it to recover per-layer spatial extents without separate shape
  /// inference plumbing.
  const Tensor& input_cache() const { return input_cache_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t pad_;
  bool use_bias_;

  Param weight_;  // [OC, IC, K, K]
  Param bias_;    // [OC]

  // Forward-pass cache for backward.
  Tensor input_cache_;
};

}  // namespace qsnc::nn
