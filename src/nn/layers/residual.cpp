#include "nn/layers/residual.h"

#include <stdexcept>

namespace qsnc::nn {

ResidualBlock::ResidualBlock(int64_t in_channels, int64_t out_channels,
                             int64_t stride, Rng& rng, ShortcutKind shortcut)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                      rng, /*use_bias=*/false)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels)),
      relu1_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng,
                                      /*use_bias=*/false)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels)),
      relu_out_(std::make_unique<ReLU>()) {
  if (out_channels < in_channels) {
    throw std::invalid_argument("ResidualBlock: channel narrowing unsupported");
  }
  const bool shape_changes = stride != 1 || in_channels != out_channels;
  if (shape_changes && shortcut == ShortcutKind::kProjection) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, rng, /*use_bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ResidualBlock::shortcut_forward(const Tensor& input, bool train) {
  if (proj_conv_) {
    Tensor s = proj_conv_->forward(input, train);
    return proj_bn_->forward(s, train);
  }
  if (stride_ == 1 && in_channels_ == out_channels_) return input;

  // Option A: spatial subsample by stride, zero-pad new channels.
  if (train) input_shape_ = input.shape();
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = (in_h + stride_ - 1) / stride_;
  const int64_t out_w = (in_w + stride_ - 1) / stride_;
  Tensor out({batch, out_channels_, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < in_channels_; ++c) {
      for (int64_t y = 0; y < out_h; ++y) {
        for (int64_t x = 0; x < out_w; ++x) {
          out.at(n, c, y, x) = input.at(n, c, y * stride_, x * stride_);
        }
      }
    }
  }
  return out;
}

Tensor ResidualBlock::shortcut_backward(const Tensor& grad) {
  if (proj_conv_) {
    Tensor g = proj_bn_->backward(grad);
    return proj_conv_->backward(g);
  }
  if (stride_ == 1 && in_channels_ == out_channels_) return grad;

  if (input_shape_.empty()) {
    throw std::logic_error("ResidualBlock: shortcut backward before forward");
  }
  Tensor out(input_shape_);
  const int64_t batch = grad.dim(0);
  const int64_t out_h = grad.dim(2);
  const int64_t out_w = grad.dim(3);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < in_channels_; ++c) {
      for (int64_t y = 0; y < out_h; ++y) {
        for (int64_t x = 0; x < out_w; ++x) {
          out.at(n, c, y * stride_, x * stride_) = grad.at(n, c, y, x);
        }
      }
    }
  }
  return out;
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  Tensor main = conv1_->forward(input, train);
  main = bn1_->forward(main, train);
  main = relu1_->forward(main, train);
  main = conv2_->forward(main, train);
  main = bn2_->forward(main, train);

  main += shortcut_forward(input, train);
  return relu_out_->forward(main, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor g = relu_out_->backward(grad_output);

  // Main branch.
  Tensor gm = bn2_->backward(g);
  gm = conv2_->backward(gm);
  gm = relu1_->backward(gm);
  gm = bn1_->backward(gm);
  gm = conv1_->backward(gm);

  gm += shortcut_backward(g);
  return gm;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out;
  for (Layer* l : children()) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<Layer*> ResidualBlock::children() {
  std::vector<Layer*> out{conv1_.get(), bn1_.get(),  relu1_.get(),
                          conv2_.get(), bn2_.get(), relu_out_.get()};
  if (proj_conv_) {
    out.push_back(proj_conv_.get());
    out.push_back(proj_bn_.get());
  }
  return out;
}

}  // namespace qsnc::nn
