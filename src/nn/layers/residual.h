// Basic residual block (He et al. 2016), CIFAR style:
//
//   y = ReLU( BN(conv3x3(ReLU(BN(conv3x3(x))))) + shortcut(x) )
//
// Two shortcut kinds when the block changes shape:
//  * kProjection — 1x1 strided conv + BN (ResNet "option B").
//  * kPadIdentity — strided spatial subsample + zero channel padding
//    ("option A", parameter-free). The paper's Table 1/5 ResNet counts
//    exactly 17 conv layers + 1 FC, which implies option A (projection
//    convs would add crossbar layers); the model zoo uses it.
// Implemented as a composite Layer so the rest of the stack (optimizer,
// serializer, signal hooks, SNC mapper) can treat a ResNet as a flat
// sequence with nested children.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "nn/layers/batchnorm.h"
#include "nn/layers/conv2d.h"
#include "nn/layers/relu.h"
#include "nn/rng.h"

namespace qsnc::nn {

enum class ShortcutKind { kProjection, kPadIdentity };

class ResidualBlock : public Layer {
 public:
  /// Block from `in_channels` to `out_channels`; `stride` applies to the
  /// first conv (and the shortcut, when shape changes).
  ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
                Rng& rng, ShortcutKind shortcut = ShortcutKind::kPadIdentity);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<Layer*> children() override;
  std::string name() const override { return "ResidualBlock"; }

  bool has_projection() const { return proj_conv_ != nullptr; }
  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn1() { return *bn1_; }
  BatchNorm2d& bn2() { return *bn2_; }
  Conv2d* proj_conv() { return proj_conv_.get(); }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }
  int64_t stride() const { return stride_; }
  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  Tensor shortcut_forward(const Tensor& input, bool train);
  Tensor shortcut_backward(const Tensor& grad);

  int64_t in_channels_;
  int64_t out_channels_;
  int64_t stride_;

  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_conv_;     // only for kProjection shortcuts
  std::unique_ptr<BatchNorm2d> proj_bn_;  // paired with proj_conv_
  std::unique_ptr<ReLU> relu_out_;

  Shape input_shape_;  // cached for pad-identity backward
};

}  // namespace qsnc::nn
