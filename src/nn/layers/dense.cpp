#include "nn/layers/dense.h"

#include <stdexcept>

#include "nn/gemm.h"
#include "nn/initializer.h"

namespace qsnc::nn {

Dense::Dense(int64_t in_features, int64_t out_features, Rng& rng,
             bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_("dense.weight", Tensor({out_features, in_features})),
      bias_("dense.bias", Tensor({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: non-positive feature count");
  }
  he_normal(weight_.value, in_features, rng);
}

Tensor Dense::forward(const Tensor& input, bool train) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Dense::forward: expected [N," +
                                std::to_string(in_features_) + "], got " +
                                shape_to_string(input.shape()));
  }
  const int64_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  // y[N, out] = x[N, in] * W^T[in, out]  (W stored [out, in])
  gemm_a_bt_acc(input.data(), weight_.value.data(), output.data(), batch,
                in_features_, out_features_);
  if (use_bias_) {
    for (int64_t n = 0; n < batch; ++n) {
      float* row = output.data() + n * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
    }
  }
  if (train) input_cache_ = input;
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  if (input.empty()) {
    throw std::logic_error("Dense::backward before forward(train=true)");
  }
  const int64_t batch = input.dim(0);

  // dW[out, in] += gout^T[out, N] * x[N, in]
  gemm_at_b_acc(grad_output.data(), input.data(), weight_.grad.data(),
                out_features_, batch, in_features_);
  if (use_bias_) {
    for (int64_t n = 0; n < batch; ++n) {
      const float* row = grad_output.data() + n * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
    }
  }
  // dx[N, in] = gout[N, out] * W[out, in]
  Tensor grad_input({batch, in_features_});
  gemm_acc(grad_output.data(), weight_.value.data(), grad_input.data(), batch,
           out_features_, in_features_);
  return grad_input;
}

std::vector<Param*> Dense::params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace qsnc::nn
