// Batch normalization over the channel axis of NCHW activations.
//
// Standard formulation (Ioffe & Szegedy 2015): per-channel statistics over
// (N, H, W), learned affine (gamma, beta), and exponential running stats for
// inference. The ResNet model in the paper's Table 1 requires this.
#pragma once

#include <cstdint>

#include "nn/layer.h"

namespace qsnc::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "BatchNorm2d"; }

  int64_t channels() const { return channels_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  /// Folds the normalization into an affine y = a*x + b per channel using
  /// running statistics; used when deploying to the SNC (the crossbar can
  /// only realize linear ops, so BN must be fused into weights beforehand).
  void inference_affine(int64_t channel, float* scale, float* shift) const;

  /// Resets the layer to the exact inference identity (gamma 1, beta 0,
  /// mean 0, var 1-eps); core::fold_batchnorm calls this after absorbing
  /// the affine into the preceding convolution.
  void reset_to_identity();

  float eps() const { return eps_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;

  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Cache for backward.
  Tensor x_hat_;       // normalized input
  Tensor batch_mean_;  // [C]
  Tensor batch_var_;   // [C]
  Shape input_shape_;
};

}  // namespace qsnc::nn
