// Inverted dropout: active only in training mode, identity at inference.
// The AlexNet lineage the paper's Table 1 models descend from regularizes
// its FC head this way; included for substrate completeness and used by
// the extended model-zoo variants.
//
// Mask generation draws from per-chunk RNG streams derived from
// (seed, forward-pass counter, chunk index) — see Rng::stream_seed — so the
// chunks can run on the thread pool and the mask is identical at any
// thread count, and across runs at equal seeds.
#pragma once

#include "nn/layer.h"
#include "nn/rng.h"

namespace qsnc::nn {

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1); surviving activations are
  /// scaled by 1/(1-rate) so inference needs no rescaling.
  Dropout(float rate, uint64_t seed);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  float keep_scale_;
  uint64_t seed_;
  uint64_t round_ = 0;  // training forward passes seen, keys the streams
  Tensor mask_;
};

}  // namespace qsnc::nn
