// ReLU activation. This is an inter-layer *signal* boundary in the paper's
// terminology: the Neuron Convergence regularizer attaches here, and SNC
// deployment rate-codes exactly these tensors into spike trains.
//
// Hooks (see nn/signal.h):
//  * set_regularizer: adds lambda * rg'(o) to the gradient in backward and
//    reports the accumulated penalty via last_penalty() — this is how Eq 2's
//    per-layer Rg(O_i) terms are realized without a tape autograd.
//  * set_quantizer: applies a value quantizer to the signal in forward
//    (fake quantization); backward uses the straight-through estimator.
#pragma once

#include "nn/layer.h"
#include "nn/signal.h"

namespace qsnc::nn {

class ReLU : public Layer {
 public:
  ReLU() = default;

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  bool is_signal() const override { return true; }

  /// Attach / detach a signal regularizer (non-owning; nullptr detaches).
  void set_regularizer(const SignalRegularizer* reg) { regularizer_ = reg; }

  /// Attach / detach a signal quantizer (non-owning; nullptr detaches).
  void set_quantizer(const SignalQuantizer* q) { quantizer_ = q; }

  const SignalQuantizer* quantizer() const { return quantizer_; }

  /// Regularizer penalty accumulated in the most recent training forward
  /// pass (already multiplied by lambda). Zero when no regularizer is set.
  float last_penalty() const { return last_penalty_; }

 private:
  const SignalRegularizer* regularizer_ = nullptr;
  const SignalQuantizer* quantizer_ = nullptr;

  Tensor mask_;       // 1 where input > 0
  Tensor pre_quant_;  // post-ReLU, pre-quantizer signal (for STE + reg grad)
  float last_penalty_ = 0.0f;
};

}  // namespace qsnc::nn
