#include "nn/layers/pool.h"

#include <limits>
#include <stdexcept>

#include "nn/im2col.h"

namespace qsnc::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("MaxPool2d: invalid geometry");
  }
}

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d::forward: expected rank-4 input");
  }
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = conv_out_extent(in_h, kernel_, stride_, 0);
  const int64_t out_w = conv_out_extent(in_w, kernel_, stride_, 0);

  Tensor output({batch, channels, out_h, out_w});
  if (train) {
    input_shape_ = input.shape();
    argmax_.assign(static_cast<size_t>(output.numel()), -1);
  }

  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane =
          input.data() + (n * channels + c) * in_h * in_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * stride_ + ky;
            if (iy >= in_h) break;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * stride_ + kx;
              if (ix >= in_w) break;
              const float v = plane[iy * in_w + ix];
              if (v > best) {
                best = v;
                best_idx = (n * channels + c) * in_h * in_w + iy * in_w + ix;
              }
            }
          }
          output[out_idx] = best;
          if (train) argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("MaxPool2d::backward before forward(train=true)");
  }
  Tensor grad_input(input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    const int64_t src = argmax_[static_cast<size_t>(i)];
    if (src >= 0) grad_input[src] += grad_output[i];
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0) {
    throw std::invalid_argument("AvgPool2d: invalid geometry");
  }
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4) {
    throw std::invalid_argument("AvgPool2d::forward: expected rank-4 input");
  }
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = conv_out_extent(in_h, kernel_, stride_, 0);
  const int64_t out_w = conv_out_extent(in_w, kernel_, stride_, 0);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor output({batch, channels, out_h, out_w});
  if (train) input_shape_ = input.shape();

  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          float acc = 0.0f;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * stride_ + ky;
            if (iy >= in_h) break;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * stride_ + kx;
              if (ix >= in_w) break;
              acc += plane[iy * in_w + ix];
            }
          }
          output[out_idx] = acc * inv;
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward before forward(train=true)");
  }
  const int64_t batch = input_shape_[0];
  const int64_t channels = input_shape_[1];
  const int64_t in_h = input_shape_[2];
  const int64_t in_w = input_shape_[3];
  const int64_t out_h = grad_output.dim(2);
  const int64_t out_w = grad_output.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor grad_input(input_shape_);
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      float* plane = grad_input.data() + (n * channels + c) * in_h * in_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          const float g = grad_output[out_idx] * inv;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t iy = oy * stride_ + ky;
            if (iy >= in_h) break;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t ix = ox * stride_ + kx;
              if (ix >= in_w) break;
              plane[iy * in_w + ix] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  if (input.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool: expected rank-4 input");
  }
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t hw = input.dim(2) * input.dim(3);
  const float inv = 1.0f / static_cast<float>(hw);
  if (train) input_shape_ = input.shape();

  Tensor output({batch, channels});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * hw;
      float acc = 0.0f;
      for (int64_t i = 0; i < hw; ++i) acc += plane[i];
      output.at(n, c) = acc * inv;
    }
  }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("GlobalAvgPool::backward before forward");
  }
  const int64_t batch = input_shape_[0];
  const int64_t channels = input_shape_[1];
  const int64_t hw = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);

  Tensor grad_input(input_shape_);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float g = grad_output.at(n, c) * inv;
      float* plane = grad_input.data() + (n * channels + c) * hw;
      for (int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

}  // namespace qsnc::nn
