// Max and average pooling over NCHW activations (square window).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace qsnc::nn {

class MaxPool2d : public Layer {
 public:
  /// Square window `kernel` with the given stride (no padding).
  MaxPool2d(int64_t kernel, int64_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape input_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

class AvgPool2d : public Layer {
 public:
  AvgPool2d(int64_t kernel, int64_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape input_shape_;
};

}  // namespace qsnc::nn
