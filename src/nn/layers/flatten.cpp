#include "nn/layers/flatten.h"

#include <stdexcept>

namespace qsnc::nn {

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank must be >= 2");
  }
  if (train) input_shape_ = input.shape();
  return input.reshape({input.dim(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (input_shape_.empty()) {
    throw std::logic_error("Flatten::backward before forward(train=true)");
  }
  return grad_output.reshape(input_shape_);
}

}  // namespace qsnc::nn
