#include "nn/layers/conv2d.h"

#include <stdexcept>

#include "nn/gemm.h"
#include "nn/im2col.h"
#include "nn/initializer.h"

namespace qsnc::nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, Rng& rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      weight_("conv.weight",
              Tensor({out_channels, in_channels, kernel, kernel})),
      bias_("conv.bias", Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
  he_normal(weight_.value, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [N," +
                                std::to_string(in_channels_) + ",H,W], got " +
                                shape_to_string(input.shape()));
  }
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = conv_out_extent(in_h, kernel_, stride_, pad_);
  const int64_t out_w = conv_out_extent(in_w, kernel_, stride_, pad_);
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t out_hw = out_h * out_w;

  Tensor output({batch, out_channels_, out_h, out_w});
  std::vector<float> cols(static_cast<size_t>(patch * out_hw));

  for (int64_t n = 0; n < batch; ++n) {
    const float* image = input.data() + n * in_channels_ * in_h * in_w;
    im2col(image, in_channels_, in_h, in_w, kernel_, kernel_, stride_, pad_,
           cols.data());
    float* out = output.data() + n * out_channels_ * out_hw;
    // out[OC, out_hw] = W[OC, patch] x cols[patch, out_hw]
    gemm(weight_.value.data(), cols.data(), out, out_channels_, patch, out_hw);
    if (use_bias_) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        const float b = bias_.value[oc];
        float* row = out + oc * out_hw;
        for (int64_t i = 0; i < out_hw; ++i) row[i] += b;
      }
    }
  }

  if (train) input_cache_ = input;
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  if (input.empty()) {
    throw std::logic_error("Conv2d::backward before forward(train=true)");
  }
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2);
  const int64_t out_w = grad_output.dim(3);
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t out_hw = out_h * out_w;

  Tensor grad_input(input.shape());
  std::vector<float> cols(static_cast<size_t>(patch * out_hw));
  std::vector<float> grad_cols(static_cast<size_t>(patch * out_hw));

  for (int64_t n = 0; n < batch; ++n) {
    const float* image = input.data() + n * in_channels_ * in_h * in_w;
    const float* gout = grad_output.data() + n * out_channels_ * out_hw;

    // dW += gout[OC, out_hw] x cols^T[out_hw, patch]
    im2col(image, in_channels_, in_h, in_w, kernel_, kernel_, stride_, pad_,
           cols.data());
    gemm_a_bt_acc(gout, cols.data(), weight_.grad.data(), out_channels_,
                  out_hw, patch);

    // dBias += sum over spatial positions.
    if (use_bias_) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        float acc = 0.0f;
        const float* row = gout + oc * out_hw;
        for (int64_t i = 0; i < out_hw; ++i) acc += row[i];
        bias_.grad[oc] += acc;
      }
    }

    // grad_cols[patch, out_hw] = W^T[patch, OC] x gout[OC, out_hw]
    std::fill(grad_cols.begin(), grad_cols.end(), 0.0f);
    gemm_at_b_acc(weight_.value.data(), gout, grad_cols.data(), patch,
                  out_channels_, out_hw);
    float* gin = grad_input.data() + n * in_channels_ * in_h * in_w;
    col2im(grad_cols.data(), in_channels_, in_h, in_w, kernel_, kernel_,
           stride_, pad_, gin);
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace qsnc::nn
