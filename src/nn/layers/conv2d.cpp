#include "nn/layers/conv2d.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/gemm.h"
#include "nn/im2col.h"
#include "nn/initializer.h"
#include "util/thread_pool.h"

namespace qsnc::nn {

namespace {
// Fixed chunk count for the backward weight/bias-gradient reduction. The
// batch is split into this many contiguous chunks (fewer when the batch is
// smaller), each accumulating into a private gradient buffer; the chunks
// are then folded into the shared gradient in ascending order. Because the
// chunking depends only on the batch size, gradients are bit-identical at
// any thread count.
constexpr int64_t kGradChunks = 8;

// Per-thread im2col scratch, reused across images and layers so the batch
// loop never allocates. im2col overwrites every entry (padding taps write
// zeros), so stale contents cannot leak between images.
thread_local std::vector<float> tl_cols;
thread_local std::vector<float> tl_grad_cols;
}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, Rng& rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      weight_("conv.weight",
              Tensor({out_channels, in_channels, kernel, kernel})),
      bias_("conv.bias", Tensor({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2d: invalid geometry");
  }
  he_normal(weight_.value, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [N," +
                                std::to_string(in_channels_) + ",H,W], got " +
                                shape_to_string(input.shape()));
  }
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = conv_out_extent(in_h, kernel_, stride_, pad_);
  const int64_t out_w = conv_out_extent(in_w, kernel_, stride_, pad_);
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t out_hw = out_h * out_w;

  Tensor output({batch, out_channels_, out_h, out_w});

  // Images are independent: partition the batch across the pool, one
  // im2col scratch per thread. Inside a distributed chunk the gemm runs
  // serially (nested parallelism executes inline); a single-image batch
  // falls through as one chunk and lets the gemm itself fan out.
  util::parallel_for(0, batch, 1, [&](int64_t n0, int64_t n1) {
    std::vector<float>& cols = tl_cols;
    cols.resize(static_cast<size_t>(patch * out_hw));
    for (int64_t n = n0; n < n1; ++n) {
      const float* image = input.data() + n * in_channels_ * in_h * in_w;
      im2col(image, in_channels_, in_h, in_w, kernel_, kernel_, stride_, pad_,
             cols.data());
      float* out = output.data() + n * out_channels_ * out_hw;
      // out[OC, out_hw] = W[OC, patch] x cols[patch, out_hw]
      gemm(weight_.value.data(), cols.data(), out, out_channels_, patch,
           out_hw);
      if (use_bias_) {
        for (int64_t oc = 0; oc < out_channels_; ++oc) {
          const float b = bias_.value[oc];
          float* row = out + oc * out_hw;
          for (int64_t i = 0; i < out_hw; ++i) row[i] += b;
        }
      }
    }
  });

  if (train) input_cache_ = input;
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  if (input.empty()) {
    throw std::logic_error("Conv2d::backward before forward(train=true)");
  }
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2);
  const int64_t out_w = grad_output.dim(3);
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t out_hw = out_h * out_w;

  Tensor grad_input(input.shape());

  // The batch is split into a shape-determined number of contiguous
  // chunks; each accumulates dW/dBias into a private buffer (grad_input
  // rows are disjoint per image and need none). Chunks then fold into the
  // shared gradients in ascending order, so the result is bit-identical
  // at any thread count.
  const int64_t chunks = std::min<int64_t>(batch, kGradChunks);
  const int64_t per_chunk = (batch + chunks - 1) / chunks;
  const int64_t wsize = weight_.grad.numel();
  std::vector<float> wpart(static_cast<size_t>(chunks * wsize), 0.0f);
  std::vector<float> bpart(
      use_bias_ ? static_cast<size_t>(chunks * out_channels_) : 0, 0.0f);

  util::parallel_for(0, chunks, 1, [&](int64_t c0, int64_t c1) {
    std::vector<float>& cols = tl_cols;
    std::vector<float>& grad_cols = tl_grad_cols;
    cols.resize(static_cast<size_t>(patch * out_hw));
    grad_cols.resize(static_cast<size_t>(patch * out_hw));
    for (int64_t ch = c0; ch < c1; ++ch) {
      float* wgrad = wpart.data() + ch * wsize;
      float* bgrad = use_bias_ ? bpart.data() + ch * out_channels_ : nullptr;
      const int64_t nb = ch * per_chunk;
      const int64_t ne = std::min(nb + per_chunk, batch);
      for (int64_t n = nb; n < ne; ++n) {
        const float* image = input.data() + n * in_channels_ * in_h * in_w;
        const float* gout = grad_output.data() + n * out_channels_ * out_hw;

        // dW += gout[OC, out_hw] x cols^T[out_hw, patch]
        im2col(image, in_channels_, in_h, in_w, kernel_, kernel_, stride_,
               pad_, cols.data());
        gemm_a_bt_acc(gout, cols.data(), wgrad, out_channels_, out_hw, patch);

        // dBias += sum over spatial positions.
        if (use_bias_) {
          for (int64_t oc = 0; oc < out_channels_; ++oc) {
            float acc = 0.0f;
            const float* row = gout + oc * out_hw;
            for (int64_t i = 0; i < out_hw; ++i) acc += row[i];
            bgrad[oc] += acc;
          }
        }

        // grad_cols[patch, out_hw] = W^T[patch, OC] x gout[OC, out_hw]
        std::fill(grad_cols.begin(),
                  grad_cols.begin() + static_cast<int64_t>(patch * out_hw),
                  0.0f);
        gemm_at_b_acc(weight_.value.data(), gout, grad_cols.data(), patch,
                      out_channels_, out_hw);
        float* gin = grad_input.data() + n * in_channels_ * in_h * in_w;
        col2im(grad_cols.data(), in_channels_, in_h, in_w, kernel_, kernel_,
               stride_, pad_, gin);
      }
    }
  });

  for (int64_t ch = 0; ch < chunks; ++ch) {
    const float* wgrad = wpart.data() + ch * wsize;
    for (int64_t e = 0; e < wsize; ++e) weight_.grad[e] += wgrad[e];
    if (use_bias_) {
      const float* bgrad = bpart.data() + ch * out_channels_;
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        bias_.grad[oc] += bgrad[oc];
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace qsnc::nn
