#include "nn/layers/dropout.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"

namespace qsnc::nn {

namespace {
// Elements per RNG stream. Fixed (never derived from the pool size) so the
// chunk → stream mapping, and therefore the mask, is thread-count
// invariant.
constexpr int64_t kChunk = 4096;
}  // namespace

Dropout::Dropout(float rate, uint64_t seed)
    : rate_(rate), keep_scale_(1.0f / (1.0f - rate)), seed_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || rate_ == 0.0f) {
    mask_ = Tensor();  // inference path leaves no backward state
    return input;
  }
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  const int64_t numel = input.numel();
  const int64_t chunks = (numel + kChunk - 1) / kChunk;
  const uint64_t round_seed = Rng::stream_seed(seed_, ++round_);
  util::parallel_for(0, chunks, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t ch = c0; ch < c1; ++ch) {
      Rng rng = Rng::stream(round_seed, static_cast<uint64_t>(ch));
      const int64_t e0 = ch * kChunk;
      const int64_t e1 = std::min(e0 + kChunk, numel);
      for (int64_t i = e0; i < e1; ++i) {
        const bool keep = !rng.bernoulli(rate_);
        mask_[i] = keep ? keep_scale_ : 0.0f;
        output[i] = input[i] * mask_[i];
      }
    }
  });
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) {
    // forward ran in inference mode or with rate 0: identity gradient.
    return grad_output;
  }
  Tensor grad_input(grad_output.shape());
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * mask_[i];
  }
  return grad_input;
}

}  // namespace qsnc::nn
