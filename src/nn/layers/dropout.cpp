#include "nn/layers/dropout.h"

#include <stdexcept>

namespace qsnc::nn {

Dropout::Dropout(float rate, uint64_t seed)
    : rate_(rate), keep_scale_(1.0f / (1.0f - rate)), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || rate_ == 0.0f) {
    mask_ = Tensor();  // inference path leaves no backward state
    return input;
  }
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? keep_scale_ : 0.0f;
    output[i] = input[i] * mask_[i];
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) {
    // forward ran in inference mode or with rate 0: identity gradient.
    return grad_output;
  }
  Tensor grad_input(grad_output.shape());
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[i] = grad_output[i] * mask_[i];
  }
  return grad_input;
}

}  // namespace qsnc::nn
