// Flattens [N, C, H, W] activations to [N, C*H*W] for the FC head.
#pragma once

#include "nn/layer.h"

namespace qsnc::nn {

class Flatten : public Layer {
 public:
  Flatten() = default;

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace qsnc::nn
