#include "nn/igemm.h"

#include <algorithm>
#include <cstring>

#include "nn/gemm_kernels.h"
#include "nn/simd.h"
#include "util/thread_pool.h"

namespace qsnc::nn {

namespace {

// Same fan-out economics as the fp32 kernels: below this MAC count the
// fork/join overhead dominates.
constexpr int64_t kParallelMinMacs = int64_t{1} << 17;

// Per-thread AVX2 B panel for the unpacked entry points.
thread_local util::aligned_vector<int16_t> tl_ipanel;

const int16_t* pack_ib(const int16_t* b, int64_t k, int64_t n) {
  tl_ipanel.resize(static_cast<size_t>(kernels::ib_panel_int16s(k, n)));
  kernels::pack_ib_panel(b, k, n, tl_ipanel.data());
  return tl_ipanel.data();
}

// Scalar reference: plain triple loop; the j-inner form auto-vectorizes
// acceptably and integer math makes every ordering equivalent.
void igemm_acc_rows_scalar(const int16_t* a, const int16_t* b, int32_t* c,
                           int64_t k, int64_t n, int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; ++i) {
    const int16_t* arow = a + i * k;
    int32_t* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const int32_t av = arow[kk];
      if (av == 0) continue;  // quantized signals are sparse
      const int16_t* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * static_cast<int32_t>(brow[j]);
      }
    }
  }
}

void igemm_acc_dispatch(const int16_t* a, const int16_t* b_raw,
                        const int16_t* b_panel, int32_t* c, int64_t m,
                        int64_t k, int64_t n) {
  const bool use_simd = simd::use_avx2();
  auto rows = [&](int64_t i0, int64_t i1) {
    if (use_simd) {
      kernels::avx2_igemm_acc_rows(a, b_panel, c, k, n, i0, i1);
    } else {
      igemm_acc_rows_scalar(a, b_raw, c, k, n, i0, i1);
    }
  };
  if (m * k * n < kParallelMinMacs) {
    rows(0, m);
    return;
  }
  util::parallel_for(0, m, 16, rows);
}

}  // namespace

void igemm_acc(const int16_t* a, const int16_t* b, int32_t* c, int64_t m,
               int64_t k, int64_t n) {
  const int16_t* panel = simd::use_avx2() ? pack_ib(b, k, n) : nullptr;
  igemm_acc_dispatch(a, b, panel, c, m, k, n);
}

void igemm(const int16_t* a, const int16_t* b, int32_t* c, int64_t m,
           int64_t k, int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
  igemm_acc(a, b, c, m, k, n);
}

IGemmPackedB::IGemmPackedB(const int16_t* b, int64_t k, int64_t n)
    : k_(k),
      n_(n),
      raw_(b, b + static_cast<size_t>(k * n)),
      panel_(static_cast<size_t>(kernels::ib_panel_int16s(k, n))) {
  kernels::pack_ib_panel(b, k, n, panel_.data());
}

void igemm_prepacked(const int16_t* a, const IGemmPackedB& b, int32_t* c,
                     int64_t m) {
  std::memset(c, 0, static_cast<size_t>(m * b.n()) * sizeof(int32_t));
  igemm_acc_dispatch(a, b.raw(), b.panel(), c, m, b.k(), b.n());
}

void iaccumulate_rows(const int32_t* rows, const int32_t* vals,
                      int64_t n_events, const int16_t* panel, int64_t cols,
                      int32_t* acc) {
  if (simd::use_avx2()) {
    kernels::avx2_iaccumulate_rows(rows, vals, n_events, panel, cols, acc);
    return;
  }
  for (int64_t e = 0; e < n_events; ++e) {
    const int32_t v = vals[e];
    const int16_t* row = panel + rows[e] * cols;
    for (int64_t j = 0; j < cols; ++j) {
      acc[j] += v * static_cast<int32_t>(row[j]);
    }
  }
}

void iaccumulate_rows_batch(const int32_t* rows, const int32_t* vals,
                            int64_t n_events, int64_t batch,
                            const int16_t* panel, int64_t cols,
                            int32_t* acc) {
  if (simd::use_avx2()) {
    kernels::avx2_iaccumulate_rows_batch(rows, vals, n_events, batch, panel,
                                         cols, acc);
    return;
  }
  for (int64_t e = 0; e < n_events; ++e) {
    const int16_t* row = panel + rows[e] * cols;
    const int32_t* v = vals + e * batch;
    for (int64_t b = 0; b < batch; ++b) {
      if (v[b] == 0) continue;
      int32_t* a = acc + b * cols;
      for (int64_t j = 0; j < cols; ++j) {
        a[j] += v[b] * static_cast<int32_t>(row[j]);
      }
    }
  }
}

}  // namespace qsnc::nn
