// Network state snapshot / restore, in memory and on disk.
//
// State covers all trainable parameters plus batch-norm running statistics.
// The in-memory snapshot is used heavily by the QAT pipeline: the paper's
// "with / without" comparisons must start both arms from the identical
// initialization, so the pipeline snapshots after init and restores between
// arms. The on-disk format is a simple versioned little-endian dump.
#pragma once

#include <string>
#include <vector>

#include "nn/network.h"

namespace qsnc::nn {

/// Opaque full state of a network (parameters + BN running stats).
struct NetworkState {
  std::vector<Tensor> tensors;
};

/// Captures all state tensors of the network, in deterministic order.
NetworkState snapshot(Network& net);

/// Restores a snapshot taken from a structurally identical network.
/// Throws std::invalid_argument on any shape mismatch.
void restore(Network& net, const NetworkState& state);

/// Writes the snapshot to `path`. Throws std::runtime_error on I/O failure.
void save_state(Network& net, const std::string& path);

/// Reads state previously written by save_state into the (structurally
/// identical) network. Throws on I/O failure or shape mismatch.
void load_state(Network& net, const std::string& path);

/// The byte-for-byte image save_state writes (magic | version |
/// crc32(payload) | payload), built in memory — what a checkpoint push
/// over a socket carries.
std::vector<uint8_t> save_state_bytes(Network& net);

/// Restores state from an in-memory image in the save_state format.
/// `what` labels error messages (e.g. the pushing peer). Magic, version,
/// and CRC are validated before any tensor data is trusted; throws
/// std::runtime_error (bad magic / version / checksum / truncation) or
/// std::invalid_argument (shape mismatch) with the failure reason.
void load_state_bytes(Network& net, const std::vector<uint8_t>& bytes,
                      const std::string& what);

}  // namespace qsnc::nn
