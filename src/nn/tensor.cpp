#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace qsnc::nn {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("shape_numel: negative extent");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(shape_numel(shape_), value) {}

namespace {
void check_values_size(size_t size, const Shape& shape) {
  if (static_cast<int64_t>(size) != shape_numel(shape)) {
    throw std::invalid_argument("Tensor: values size " + std::to_string(size) +
                                " does not match shape " +
                                shape_to_string(shape));
  }
}
}  // namespace

Tensor::Tensor(Shape shape, const std::vector<float>& values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  check_values_size(data_.size(), shape_);
}

Tensor Tensor::from_vector(std::vector<float> values) {
  Shape s{static_cast<int64_t>(values.size())};
  return Tensor(std::move(s), std::move(values));
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t r = rank();
  if (d < 0) d += r;
  if (d < 0 || d >= r) {
    throw std::out_of_range("Tensor::dim: axis " + std::to_string(d) +
                            " out of range for rank " + std::to_string(r));
  }
  return shape_[static_cast<size_t>(d)];
}

void Tensor::check_index(int64_t i) const {
  assert(i >= 0 && i < numel());
  (void)i;
}

float& Tensor::operator[](int64_t i) {
  check_index(i);
  return data_[static_cast<size_t>(i)];
}

float Tensor::operator[](int64_t i) const {
  check_index(i);
  return data_[static_cast<size_t>(i)];
}

namespace {
// Rank mismatches are programming errors that silently index out of bounds
// if unchecked; the single compare is negligible next to the arithmetic.
void require_rank(const Shape& shape, size_t expected) {
  if (shape.size() != expected) {
    throw std::logic_error("Tensor::at: rank-" + std::to_string(expected) +
                           " accessor on tensor of shape " +
                           shape_to_string(shape));
  }
}
}  // namespace

float& Tensor::at(int64_t i, int64_t j) {
  require_rank(shape_, 2);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float Tensor::at(int64_t i, int64_t j) const {
  require_rank(shape_, 2);
  return data_[static_cast<size_t>(i * shape_[1] + j)];
}

float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  require_rank(shape_, 4);
  return data_[static_cast<size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  require_rank(shape_, 4);
  return data_[static_cast<size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t known = 1;
  int64_t infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer_axis >= 0) {
        throw std::invalid_argument("Tensor::reshape: multiple -1 axes");
      }
      infer_axis = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("Tensor::reshape: cannot infer axis for " +
                                  shape_to_string(new_shape));
    }
    new_shape[static_cast<size_t>(infer_axis)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::operator+=: shape mismatch " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(other.shape_));
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("Tensor::operator-=: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::mean() const {
  if (data_.empty()) throw std::logic_error("Tensor::mean on empty tensor");
  return sum() / static_cast<float>(data_.size());
}

int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  return static_cast<int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::squared_norm() const {
  float s = 0.0f;
  for (float v : data_) s += v * v;
  return s;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace qsnc::nn
