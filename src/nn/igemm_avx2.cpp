// AVX2 integer micro-kernels (vpmaddwd), compiled with -mavx2 like
// gemm_avx2.cpp. Each vpmaddwd multiplies 16 int16 pairs and sums adjacent
// products into 8 int32 lanes — two k steps per instruction — so B is
// packed with consecutive k pairs interleaved per column (pack_ib_panel).
// int32 accumulation is exact under the caller's overflow contract, so the
// SIMD schedule is bit-identical to the scalar reference with no rounding
// analysis needed.
#include "nn/gemm_kernels.h"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace qsnc::nn::kernels {

namespace {
inline int64_t k_pairs(int64_t k) { return (k + 1) / 2; }
}  // namespace

int64_t ib_panel_int16s(int64_t k, int64_t n) {
  const int64_t tiles = (n + kINR - 1) / kINR;
  return std::max<int64_t>(int64_t{1},
                           tiles * std::max<int64_t>(k_pairs(k), 1) * 2 * kINR);
}

void pack_ib_panel(const int16_t* b, int64_t k, int64_t n, int16_t* panel) {
  const int64_t kp = k_pairs(k);
  for (int64_t jt = 0; jt * kINR < n; ++jt) {
    const int64_t j0 = jt * kINR;
    int16_t* tile = panel + jt * kp * 2 * kINR;
    for (int64_t p = 0; p < kp; ++p) {
      const int64_t k0 = 2 * p;
      int16_t* dst = tile + p * 2 * kINR;
      for (int64_t jj = 0; jj < kINR; ++jj) {
        const int64_t j = j0 + jj;
        const bool live = j < n;
        dst[jj * 2 + 0] = live ? b[k0 * n + j] : int16_t{0};
        dst[jj * 2 + 1] =
            (live && k0 + 1 < k) ? b[(k0 + 1) * n + j] : int16_t{0};
      }
    }
  }
}

#if defined(__AVX2__)

namespace {

// Broadcasts the int16 pair (lo, hi) into every 32-bit lane.
inline __m256i pair_bcast(int16_t lo, int16_t hi) {
  const uint32_t u = static_cast<uint32_t>(static_cast<uint16_t>(lo)) |
                     (static_cast<uint32_t>(static_cast<uint16_t>(hi)) << 16);
  return _mm256_set1_epi32(static_cast<int32_t>(u));
}

// C(rows x 16) += A * B-tile over all k pairs. arow[r] points at A row r;
// jw <= kINR live output lanes.
inline void imkNx16(const int16_t* const* arow, int64_t rows,
                    const int16_t* bt, int64_t k, int32_t* const* crow,
                    int64_t jw) {
  __m256i acc[kIMR][2];
  for (int64_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  const int64_t kp = k_pairs(k);
  for (int64_t p = 0; p < kp; ++p) {
    const __m256i b0 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bt + p * 2 * kINR));
    const __m256i b1 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bt + p * 2 * kINR + kINR));
    const int64_t k0 = 2 * p;
    const bool has_hi = k0 + 1 < k;
    for (int64_t r = 0; r < rows; ++r) {
      const int16_t a0 = arow[r][k0];
      const int16_t a1 = has_hi ? arow[r][k0 + 1] : int16_t{0};
      if (a0 == 0 && a1 == 0) continue;  // spike-count signals are sparse
      const __m256i v = pair_bcast(a0, a1);
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(v, b0));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(v, b1));
    }
  }
  if (jw == kINR) {
    for (int64_t r = 0; r < rows; ++r) {
      __m256i* c0 = reinterpret_cast<__m256i*>(crow[r]);
      __m256i* c1 = reinterpret_cast<__m256i*>(crow[r] + 8);
      _mm256_storeu_si256(
          c0, _mm256_add_epi32(_mm256_loadu_si256(c0), acc[r][0]));
      _mm256_storeu_si256(
          c1, _mm256_add_epi32(_mm256_loadu_si256(c1), acc[r][1]));
    }
  } else {
    alignas(64) int32_t abuf[kINR];
    for (int64_t r = 0; r < rows; ++r) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(abuf), acc[r][0]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(abuf + 8), acc[r][1]);
      for (int64_t j = 0; j < jw; ++j) crow[r][j] += abuf[j];
    }
  }
}

}  // namespace

void avx2_igemm_acc_rows(const int16_t* a, const int16_t* b_panel, int32_t* c,
                         int64_t k, int64_t n, int64_t i0, int64_t i1) {
  const int64_t kp = std::max<int64_t>(k_pairs(k), 1);
  const int64_t tiles = (n + kINR - 1) / kINR;
  const int16_t* arow[kIMR];
  int32_t* crow[kIMR];
  for (int64_t ib = i0; ib < i1; ib += kIMR) {
    const int64_t rows = std::min(kIMR, i1 - ib);
    for (int64_t jt = 0; jt < tiles; ++jt) {
      const int64_t j0 = jt * kINR;
      const int64_t jw = std::min(kINR, n - j0);
      for (int64_t r = 0; r < rows; ++r) {
        arow[r] = a + (ib + r) * k;
        crow[r] = c + (ib + r) * n + j0;
      }
      imkNx16(arow, rows, b_panel + jt * kp * 2 * kINR, k, crow, jw);
    }
  }
}

void avx2_iaccumulate_rows(const int32_t* rows, const int32_t* vals,
                           int64_t n_events, const int16_t* panel,
                           int64_t cols, int32_t* acc) {
  const int64_t c8 = cols & ~int64_t{7};
  for (int64_t e = 0; e < n_events; ++e) {
    const int32_t v = vals[e];
    if (v == 0) continue;
    const int16_t* row = panel + rows[e] * cols;
    const __m256i vv = _mm256_set1_epi32(v);
    int64_t j = 0;
    for (; j < c8; j += 8) {
      const __m256i w = _mm256_cvtepi16_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + j)));
      __m256i* ap = reinterpret_cast<__m256i*>(acc + j);
      _mm256_storeu_si256(
          ap, _mm256_add_epi32(_mm256_loadu_si256(ap),
                               _mm256_mullo_epi32(w, vv)));
    }
    for (; j < cols; ++j) acc[j] += v * static_cast<int32_t>(row[j]);
  }
}

void avx2_iaccumulate_rows_batch(const int32_t* rows, const int32_t* vals,
                                 int64_t n_events, int64_t batch,
                                 const int16_t* panel, int64_t cols,
                                 int32_t* acc) {
  const int64_t c8 = cols & ~int64_t{7};
  for (int64_t e = 0; e < n_events; ++e) {
    const int16_t* row = panel + rows[e] * cols;
    const int32_t* v = vals + e * batch;
    for (int64_t b = 0; b < batch; ++b) {
      if (v[b] == 0) continue;
      int32_t* a = acc + b * cols;
      const __m256i vv = _mm256_set1_epi32(v[b]);
      int64_t j = 0;
      for (; j < c8; j += 8) {
        const __m256i w = _mm256_cvtepi16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + j)));
        __m256i* ap = reinterpret_cast<__m256i*>(a + j);
        _mm256_storeu_si256(
            ap, _mm256_add_epi32(_mm256_loadu_si256(ap),
                                 _mm256_mullo_epi32(w, vv)));
      }
      for (; j < cols; ++j) a[j] += v[b] * static_cast<int32_t>(row[j]);
    }
  }
}

#else  // !__AVX2__ — stubs; dispatch never selects these without AVX2.

void avx2_igemm_acc_rows(const int16_t*, const int16_t*, int32_t*, int64_t,
                         int64_t, int64_t, int64_t) {}
void avx2_iaccumulate_rows(const int32_t*, const int32_t*, int64_t,
                           const int16_t*, int64_t, int32_t*) {}
void avx2_iaccumulate_rows_batch(const int32_t*, const int32_t*, int64_t,
                                 int64_t, const int16_t*, int64_t,
                                 int32_t*) {}

#endif  // __AVX2__

}  // namespace qsnc::nn::kernels
