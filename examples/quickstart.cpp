// Quickstart: train LeNet on the synthetic MNIST set, quantize it to 4-bit
// signals + 4-bit weights with the paper's two techniques, and deploy it on
// the memristor SNC simulator.
//
//   ./quickstart [train_size] [test_size] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

using namespace qsnc;

int main(int argc, char** argv) {
  const int64_t train_size = argc > 1 ? std::atoll(argv[1]) : 1200;
  const int64_t test_size = argc > 2 ? std::atoll(argv[2]) : 400;
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 15;
  const int bits = 4;

  std::printf("== qsnc quickstart: LeNet, %d-bit signals & weights ==\n",
              bits);

  // 1. Data.
  data::SyntheticMnistConfig train_cfg;
  train_cfg.num_samples = train_size;
  train_cfg.seed = 1;
  data::SyntheticMnistConfig test_cfg = train_cfg;
  test_cfg.num_samples = test_size;
  test_cfg.seed = 999;
  auto train_set = data::make_synthetic_mnist(train_cfg);
  auto test_set = data::make_synthetic_mnist(test_cfg);
  std::printf("data: %lld train / %lld test images\n",
              static_cast<long long>(train_set->size()),
              static_cast<long long>(test_set->size()));

  // 2. Ideal fp32 model.
  core::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.verbose = true;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_lenet(rng);
  std::printf("training ideal fp32 LeNet (%lld weights)...\n",
              static_cast<long long>(net.num_weights()));
  core::train(net, *train_set, tcfg);
  const double ideal = core::evaluate_accuracy(net, *test_set,
                                               tcfg.input_scale);
  std::printf("ideal fp32 accuracy: %.2f%%\n", ideal * 100.0);

  // 3. Direct quantization (the problem the paper addresses).
  {
    core::IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    const double direct =
        core::evaluate_accuracy(net, *test_set, tcfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);
    std::printf("direct %d-bit signal quantization: %.2f%%\n", bits,
                direct * 100.0);
  }

  // 4. The proposed method: Neuron Convergence + Weight Clustering.
  nn::Rng rng2(tcfg.seed);
  nn::Network qnet = models::make_lenet(rng2);
  core::NcOptions nc;
  core::NeuronConvergenceRegularizer reg(bits, nc.lambda, nc.alpha);
  std::printf("training with Neuron Convergence (lambda=%.2f)...\n",
              nc.lambda);
  core::train(qnet, *train_set, tcfg, &reg, bits,
              std::max(0, epochs - nc.qat_epochs));

  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(qnet, wc);
  std::printf("weight clustering: %zu per-layer grids, first scale=%.4f "
              "mse=%.2e (%d Lloyd iters)\n",
              wcr.size(), wcr[0].scale, wcr[0].mse, wcr[0].iterations);

  core::IntegerSignalQuantizer q(bits);
  qnet.set_signal_quantizer(&q);
  const double quant =
      core::evaluate_accuracy(qnet, *test_set, tcfg.input_scale, bits);
  std::printf("proposed %d-bit accuracy: %.2f%% (drop %.2f pp)\n", bits,
              quant * 100.0, (ideal - quant) * 100.0);
  qnet.set_signal_quantizer(nullptr);

  // 5. Deploy on the memristor SNC and check functional agreement.
  snc::SncConfig scfg;
  scfg.signal_bits = bits;
  scfg.weight_bits = bits;
  scfg.weight_scales.clear();
  for (const auto& r : wcr) scfg.weight_scales.push_back(r.scale);
  scfg.input_scale = tcfg.input_scale;
  snc::SncSystem system(qnet, {1, 28, 28}, scfg);

  qnet.set_signal_quantizer(&q);
  int64_t agree = 0, snc_correct = 0;
  const int64_t n_deploy = std::min<int64_t>(50, test_set->size());
  snc::SncStats stats;
  for (int64_t i = 0; i < n_deploy; ++i) {
    const data::Sample s = test_set->get(i);
    const int64_t snc_pred = system.infer(s.image, &stats);
    nn::Tensor batch = s.image.reshape({1, 1, 28, 28});
    batch *= tcfg.input_scale;
    for (int64_t j = 0; j < batch.numel(); ++j) {
      batch[j] = core::quantize_input_signal(batch[j], bits);
    }
    const int64_t net_pred = qnet.predict(batch)[0];
    agree += snc_pred == net_pred ? 1 : 0;
    snc_correct += snc_pred == s.label ? 1 : 0;
  }
  qnet.set_signal_quantizer(nullptr);
  std::printf(
      "SNC deployment: %lld/%lld predictions match the quantized net, "
      "accuracy %.1f%% on %lld images (window=%lld slots, ~%lld spikes/img)\n",
      static_cast<long long>(agree), static_cast<long long>(n_deploy),
      100.0 * static_cast<double>(snc_correct) /
          static_cast<double>(n_deploy),
      static_cast<long long>(n_deploy),
      static_cast<long long>(stats.window_slots),
      static_cast<long long>(stats.total_spikes));
  return 0;
}
