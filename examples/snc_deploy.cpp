// SNC deployment walkthrough: train a quantization-aware LeNet, program it
// onto the memristor crossbar simulator, and study deployment effects the
// cost model can't see — physical IFC integration, stochastic rate coding,
// and device programming variation.
//
//   ./snc_deploy [n_images]
#include <cstdio>
#include <cstdlib>

#include "core/fixed_point.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t n_images = argc > 1 ? std::atoll(argv[1]) : 100;
  const int bits = 4;

  // 1. Data + quantization-aware training (Neuron Convergence + fake quant).
  data::SyntheticMnistConfig dc;
  dc.num_samples = 1200;
  auto train_set = data::make_synthetic_mnist(dc);
  data::SyntheticMnistConfig ec = dc;
  ec.num_samples = std::max<int64_t>(n_images, 100);
  ec.seed = 999;
  auto test_set = data::make_synthetic_mnist(ec);

  core::TrainConfig tcfg;
  tcfg.epochs = 12;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  std::printf("training quantization-aware LeNet (M=N=%d)...\n", bits);
  core::train(net, *train_set, tcfg, &reg, bits, tcfg.epochs - 2);

  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  // 2. Cost-model view of the deployment (Table 5 methodology).
  const snc::ModelMapping mapping =
      snc::map_network(net, "Lenet", {1, 28, 28}, 32);
  const snc::SystemCost cost = snc::evaluate_cost(mapping, bits, bits);
  std::printf("\nhardware budget: %lld crossbars (32x32), %.2f MHz, "
              "%.2f uJ/inference, %.2f mm2\n",
              static_cast<long long>(cost.crossbars), cost.speed_mhz,
              cost.energy_uj, cost.area_mm2);

  // 3. Functional deployment variants.
  snc::SncConfig base_cfg;
  base_cfg.signal_bits = bits;
  base_cfg.weight_bits = bits;
  base_cfg.weight_scales.clear();
  for (const auto& r : wcr) base_cfg.weight_scales.push_back(r.scale);
  base_cfg.input_scale = tcfg.input_scale;

  report::Table t({"deployment", "accuracy", "note"});
  const int64_t n = std::min<int64_t>(n_images, test_set->size());

  {
    snc::SncSystem sys(net, {1, 28, 28}, base_cfg);
    snc::SncStats stats;
    sys.infer(test_set->get(0).image, &stats);
    t.add_row({"ideal integration", report::pct(snc_accuracy(sys, *test_set, n)),
               "bit-exact IFC, ~" + std::to_string(stats.total_spikes) +
                   " spikes/img"});
  }
  {
    snc::SncConfig cfg = base_cfg;
    cfg.mode = snc::IntegrationMode::kOnline;
    snc::SncSystem sys(net, {1, 28, 28}, cfg);
    t.add_row({"online IFC", report::pct(snc_accuracy(sys, *test_set, n)),
               "physical fire-on-cross semantics"});
  }
  {
    snc::SncConfig cfg = base_cfg;
    cfg.mode = snc::IntegrationMode::kOnline;
    cfg.stochastic_coding = true;
    snc::SncSystem sys(net, {1, 28, 28}, cfg);
    t.add_row({"online + stochastic coding",
               report::pct(snc_accuracy(sys, *test_set, n)),
               "Bernoulli spike trains"});
  }
  for (double sigma : {0.02, 0.05, 0.10}) {
    snc::SncConfig cfg = base_cfg;
    cfg.device.variation_sigma = sigma;
    snc::SncSystem sys(net, {1, 28, 28}, cfg);
    char note[64];
    std::snprintf(note, sizeof(note), "lognormal sigma=%.2f", sigma);
    t.add_row({"programming variation",
               report::pct(snc_accuracy(sys, *test_set, n)), note});
  }
  std::printf("\n%s", t.to_string().c_str());
  return 0;
}
