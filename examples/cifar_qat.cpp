// CIFAR-style workload: run the paper's full proposed flow on the AlexNet
// model — Neuron Convergence training, Weight Clustering, combined
// quantized fine-tune — and sweep the deployment bit width.
//
//   ./cifar_qat [train_size] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"
#include "report/table.h"

using namespace qsnc;

int main(int argc, char** argv) {
  const int64_t train_size = argc > 1 ? std::atoll(argv[1]) : 800;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  data::SyntheticCifarConfig tc;
  tc.num_samples = train_size;
  tc.seed = 1;
  data::SyntheticCifarConfig ec = tc;
  ec.num_samples = 250;
  ec.seed = 999;
  auto train_set = data::make_synthetic_cifar(tc);
  auto test_set = data::make_synthetic_cifar(ec);

  core::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.lr = 1e-3f;

  // Ideal reference.
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_alexnet_mini(rng);
  const nn::NetworkState init = nn::snapshot(net);
  std::printf("training ideal fp32 AlexNet (%lld weights, %d epochs)...\n",
              static_cast<long long>(net.num_weights()), epochs);
  core::train(net, *train_set, tcfg);
  const double ideal =
      core::evaluate_accuracy(net, *test_set, tcfg.input_scale);
  std::printf("ideal accuracy: %s\n\n", report::pct(ideal).c_str());

  report::Table t({"bits (M=N)", "proposed accuracy", "drop vs ideal"});
  for (int bits : {5, 4, 3}) {
    nn::restore(net, init);
    core::NeuronConvergenceRegularizer reg(bits, 0.1f);
    std::printf("bits=%d: NC training + clustering + fine-tune...\n", bits);
    core::train(net, *train_set, tcfg, &reg, bits,
                std::max(0, epochs - 2));

    core::WeightClusterConfig wc;
    wc.bits = bits;
    const auto wcr = core::apply_weight_clustering(net, wc);
    core::TrainConfig ft = tcfg;
    ft.epochs = 1;
    ft.lr = tcfg.lr * 0.1f;
    core::fine_tune_quantized(net, *train_set, ft, bits, wc, wcr);

    core::IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    const double acc =
        core::evaluate_accuracy(net, *test_set, tcfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);
    t.add_row({std::to_string(bits), report::pct(acc),
               report::fmt((ideal - acc) * 100.0, 2) + " pp"});
  }
  std::printf("\n%s", t.to_string().c_str());
  return 0;
}
