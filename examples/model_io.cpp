// Model persistence walkthrough: train a quantization-aware LeNet, save
// the full state (parameters + batch-norm statistics) to disk, reload it
// into a freshly built network, verify bit-identical behaviour, and
// redeploy the loaded model on the SNC simulator — the workflow of
// shipping a trained model to a device programmer.
//
//   ./model_io [path]
#include <cstdio>

#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"
#include "report/table.h"
#include "snc/snc_system.h"

using namespace qsnc;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/qsnc_lenet_4bit.bin";
  const int bits = 4;

  data::SyntheticMnistConfig dc;
  dc.num_samples = 1000;
  auto train_set = data::make_synthetic_mnist(dc);
  data::SyntheticMnistConfig ec = dc;
  ec.num_samples = 300;
  ec.seed = 999;
  auto test_set = data::make_synthetic_mnist(ec);

  // Train + quantize.
  core::TrainConfig tcfg;
  tcfg.epochs = 10;
  nn::Rng rng(tcfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  std::printf("training 4-bit quantization-aware LeNet...\n");
  core::train(net, *train_set, tcfg, &reg, bits, tcfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  core::IntegerSignalQuantizer q(bits);
  net.set_signal_quantizer(&q);
  const double acc_before =
      core::evaluate_accuracy(net, *test_set, tcfg.input_scale, bits);
  net.set_signal_quantizer(nullptr);

  // Save.
  nn::save_state(net, path);
  std::printf("saved state to %s\n", path.c_str());

  // Reload into a structurally identical, freshly initialized network.
  nn::Rng rng2(12345);  // different init seed: load must overwrite it all
  nn::Network loaded = models::make_lenet(rng2);
  nn::load_state(loaded, path);
  loaded.set_signal_quantizer(&q);
  const double acc_after =
      core::evaluate_accuracy(loaded, *test_set, tcfg.input_scale, bits);

  // Per-class detail of the reloaded model.
  const core::EvalResult detail =
      core::evaluate_detailed(loaded, *test_set, tcfg.input_scale, bits);
  loaded.set_signal_quantizer(nullptr);

  std::printf("accuracy before save: %s, after load: %s (%s)\n",
              report::pct(acc_before).c_str(),
              report::pct(acc_after).c_str(),
              acc_before == acc_after ? "bit-identical" : "MISMATCH");

  report::Table t({"digit", "recall"});
  for (int64_t d = 0; d < detail.num_classes; ++d) {
    t.add_row({std::to_string(d), report::pct(detail.recall(d))});
  }
  std::printf("%s", t.to_string().c_str());

  // Redeploy the loaded model on the SNC.
  snc::SncConfig scfg;
  scfg.signal_bits = bits;
  scfg.weight_bits = bits;
  scfg.weight_scales.clear();
  for (const auto& r : wcr) scfg.weight_scales.push_back(r.scale);
  scfg.input_scale = tcfg.input_scale;
  snc::SncSystem system(loaded, {1, 28, 28}, scfg);
  int64_t correct = 0;
  const int64_t n = 50;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test_set->get(i);
    if (system.infer(s.image) == s.label) ++correct;
  }
  std::printf("SNC redeployment of the loaded model: %lld/%lld correct\n",
              static_cast<long long>(correct), static_cast<long long>(n));
  return 0;
}
