// Hardware design-space exploration with the mapper + cost model: sweep
// the crossbar size t (Eq 1) and the signal/weight bit widths for a chosen
// model, printing the speed / energy / area trade-off surface.
//
//   ./design_explorer [lenet|alexnet|resnet]
#include <cstdio>
#include <cstring>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"

using namespace qsnc;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "lenet";

  nn::Rng rng(1);
  nn::Network net = [&] {
    if (std::strcmp(which, "alexnet") == 0) return models::make_alexnet(rng);
    if (std::strcmp(which, "resnet") == 0) return models::make_resnet(rng);
    return models::make_lenet(rng);
  }();
  const nn::Shape input =
      std::strcmp(which, "lenet") == 0 ? nn::Shape{1, 28, 28}
                                       : nn::Shape{3, 32, 32};

  std::printf("== design space for %s ==\n\n", which);

  std::printf("-- crossbar size sweep (Eq 1), 4-bit design --\n");
  report::Table ts({"t", "crossbars", "utilization", "area (mm2)",
                    "energy (uJ)"});
  for (int64_t t = 8; t <= 128; t *= 2) {
    const snc::ModelMapping m = snc::map_network(net, which, input, t);
    snc::CostParams params;
    params.crossbar_size = t;
    const snc::SystemCost c = snc::evaluate_cost(m, 4, 4, params);
    // Utilization: logical cells / allocated cells.
    double logical = 0;
    for (const auto& l : m.layers) {
      logical += static_cast<double>(l.rows) * static_cast<double>(l.cols);
    }
    const double allocated =
        static_cast<double>(m.total_crossbars()) *
        static_cast<double>(t * t);
    ts.add_row({std::to_string(t), std::to_string(m.total_crossbars()),
                report::pct(logical / allocated, 1),
                report::fmt(c.area_mm2, 2), report::fmt(c.energy_uj, 2)});
  }
  std::printf("%s\n", ts.to_string().c_str());

  std::printf("-- bit width sweep (t = 32) --\n");
  const snc::ModelMapping m32 = snc::map_network(net, which, input, 32);
  report::Table tb({"M=N bits", "speed (MHz)", "energy (uJ)", "area (mm2)"});
  for (int bits = 2; bits <= 8; ++bits) {
    const snc::SystemCost c = snc::evaluate_cost(m32, bits, bits);
    tb.add_row({std::to_string(bits), report::fmt(c.speed_mhz, 2),
                report::fmt(c.energy_uj, 2), report::fmt(c.area_mm2, 2)});
  }
  std::printf("%s", tb.to_string().c_str());
  std::printf("\nsmaller windows are faster and cheaper; the accuracy cost "
              "of each bit width is what Tables 2-4 quantify.\n");
  return 0;
}
