// Ablation: what actually recovers the accuracy in the "w/" arm — the
// Eq 3 regularizer alone (the paper's literal train-then-discretize
// reading), the straight-through fake-quantization phase alone, or both
// (this reproduction's default). LeNet, 4- and 3-bit signals.
#include "bench_common.h"
#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Ablation: Neuron Convergence vs fake-quant QAT ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();

  report::Table t({"bits", "plain (w/o)", "reg only", "fake-quant only",
                   "reg + fake-quant"});
  for (int bits : {4, 3}) {
    double acc[4];
    for (int variant = 0; variant < 4; ++variant) {
      const bool use_reg = variant == 1 || variant == 3;
      const bool use_fq = variant == 2 || variant == 3;
      nn::Rng rng(cfg.seed);
      nn::Network net = models::make_lenet(rng);
      core::NeuronConvergenceRegularizer reg(bits, 0.1f);
      core::train(net, *mnist.train, cfg, use_reg ? &reg : nullptr,
                  use_fq ? bits : 0, cfg.epochs - 2);
      core::IntegerSignalQuantizer q(bits);
      net.set_signal_quantizer(&q);
      acc[variant] =
          core::evaluate_accuracy(net, *mnist.test, cfg.input_scale, bits);
      net.set_signal_quantizer(nullptr);
    }
    t.add_row({std::to_string(bits), report::pct(acc[0]),
               report::pct(acc[1]), report::pct(acc[2]),
               report::pct(acc[3])});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("the regularizer confines the signal range (cheap clamping); "
              "the STE phase adapts the network to the rounding grid; the "
              "combination is what ships in run_signal_experiment.\n");
  return 0;
}
