// Ablation: Weight Clustering grid scope — one shared scale for the whole
// network (the literal reading of Eq 6) versus one scale per layer (each
// crossbar's conductance map calibrated separately). Also isolates the
// effect of the Lloyd scale optimization and the quantized fine-tune.
#include "bench_common.h"
#include "core/metrics.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"

using namespace qsnc;

int main() {
  std::printf("== Ablation: Weight Clustering scope / optimizer / "
              "fine-tune (LeNet, 4-bit weights) ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::train(net, *mnist.train, cfg);
  const double ideal =
      core::evaluate_accuracy(net, *mnist.test, cfg.input_scale);
  const nn::NetworkState trained = nn::snapshot(net);
  std::printf("ideal fp32: %s\n\n", report::pct(ideal).c_str());

  report::Table t({"scope", "scale", "fine-tune", "accuracy"});
  for (auto scope :
       {core::ClusterScope::kPerLayer, core::ClusterScope::kPerNetwork}) {
    for (bool optimize : {false, true}) {
      for (bool fine_tune : {false, true}) {
        nn::restore(net, trained);
        core::WeightClusterConfig wc;
        wc.bits = 4;
        wc.scope = scope;
        wc.optimize_scale = optimize;
        const auto wcr = core::apply_weight_clustering(net, wc);
        if (fine_tune) {
          core::TrainConfig ft = cfg;
          ft.epochs = 2;
          ft.lr = cfg.lr * 0.1f;
          core::fine_tune_quantized(net, *mnist.train, ft, 0, wc, wcr);
        }
        const double acc =
            core::evaluate_accuracy(net, *mnist.test, cfg.input_scale);
        t.add_row({scope == core::ClusterScope::kPerLayer ? "per-layer"
                                                          : "per-network",
                   optimize ? "Lloyd-optimized" : "naive max|W|",
                   fine_tune ? "2 epochs" : "-", report::pct(acc)});
      }
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("a single network-wide grid lets the largest tensor dominate "
              "the step size; per-layer grids (each crossbar has its own "
              "conductance map anyway) dominate it at every setting.\n");
  return 0;
}
