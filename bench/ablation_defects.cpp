// Extension bench: accuracy of the deployed SNC under memristor
// fabrication defects (stuck-at-off / stuck-at-on cells), following the
// defect model of the paper's reference [16] (C. Liu et al., DAC'17).
// Stuck-on cells are far more damaging: a stuck-off cell merely zeroes one
// synapse, a stuck-on cell injects a full-scale conductance.
//
// The second table turns recovery on (write-verify + differential
// compensation + spare-column remap) and reports the accuracy reclaimed
// over the passive baseline at each rate. Writes BENCH_faults.json
// (override with QSNC_BENCH_OUT).
#include "bench_common.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("== Extension: SNC accuracy under device defects ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;
  const int64_t n = bench::fast_mode() ? 40 : 100;

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = cfg.input_scale;

  report::Table t({"defect kind", "rate", "accuracy (3-seed mean)"});
  struct Case {
    const char* kind;
    double off, on;
  };
  const Case cases[] = {
      {"none", 0.0, 0.0},       {"stuck-off", 0.01, 0.0},
      {"stuck-off", 0.05, 0.0}, {"stuck-off", 0.10, 0.0},
      {"stuck-on", 0.0, 0.01},  {"stuck-on", 0.0, 0.02},
      {"stuck-on", 0.0, 0.05},  {"both", 0.05, 0.02},
  };
  for (const Case& c : cases) {
    double acc = 0.0;
    const int seeds = c.off == 0.0 && c.on == 0.0 ? 1 : 3;
    for (int seed = 0; seed < seeds; ++seed) {
      snc::SncConfig scfg = base;
      scfg.device.stuck_off_rate = c.off;
      scfg.device.stuck_on_rate = c.on;
      scfg.seed = 7 + static_cast<uint64_t>(seed);
      snc::SncSystem sys(net, {1, 28, 28}, scfg);
      acc += snc_accuracy(sys, *mnist.test, n);
    }
    t.add_row({c.kind, report::fmt(std::max(c.off, c.on), 2),
               report::pct(acc / seeds)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("stuck-on defects dominate the damage, matching [16]'s "
              "motivation for defect-aware remapping.\n");

  // Closed-loop recovery: same fault draws (static per-cell defect maps,
  // same seeds), write-verify + differential compensation + 2 spare
  // columns per crossbar.
  const double fault_free = [&] {
    snc::SncSystem sys(net, {1, 28, 28}, base);
    return snc_accuracy(sys, *mnist.test, n);
  }();
  struct RecoveryRow {
    double rate, passive, recovered;
  };
  std::vector<RecoveryRow> rows;
  report::Table rt({"stuck-on", "passive", "recovered", "reclaimed pp",
                    "drop vs fault-free pp"});
  for (double rate : {0.01, 0.02, 0.05}) {
    const int seeds = 3;
    double passive = 0.0, recovered = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      snc::SncConfig scfg = base;
      scfg.device.stuck_on_rate = rate;
      scfg.seed = 7 + static_cast<uint64_t>(seed);
      snc::SncSystem passive_sys(net, {1, 28, 28}, scfg);
      passive += snc_accuracy(passive_sys, *mnist.test, n);
      scfg.recovery.write_verify = true;
      scfg.recovery.spare_cols = 2;
      snc::SncSystem recovered_sys(net, {1, 28, 28}, scfg);
      recovered += snc_accuracy(recovered_sys, *mnist.test, n);
    }
    passive /= seeds;
    recovered /= seeds;
    rows.push_back({rate, passive, recovered});
    rt.add_row({report::fmt(rate, 2), report::pct(passive),
                report::pct(recovered),
                report::fmt((recovered - passive) * 100.0, 1),
                report::fmt((fault_free - recovered) * 100.0, 1)});
  }
  std::printf("closed-loop recovery (write-verify + 2 spares, 3-seed "
              "mean; fault-free %s):\n%s",
              report::pct(fault_free).c_str(), rt.to_string().c_str());

  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_faults.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "ablation_defects: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"fault_free_accuracy\": %.4f,\n  \"rows\": [\n",
               fault_free);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"stuck_on_rate\": %.3f, \"passive_accuracy\": "
                 "%.4f, \"recovered_accuracy\": %.4f, "
                 "\"reclaimed_pp\": %.2f, \"drop_vs_fault_free_pp\": "
                 "%.2f}%s\n",
                 rows[i].rate, rows[i].passive, rows[i].recovered,
                 (rows[i].recovered - rows[i].passive) * 100.0,
                 (fault_free - rows[i].recovered) * 100.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
