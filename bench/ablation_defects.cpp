// Extension bench: accuracy of the deployed SNC under memristor
// fabrication defects (stuck-at-off / stuck-at-on cells), following the
// defect model of the paper's reference [16] (C. Liu et al., DAC'17).
// Stuck-on cells are far more damaging: a stuck-off cell merely zeroes one
// synapse, a stuck-on cell injects a full-scale conductance.
#include "bench_common.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("== Extension: SNC accuracy under device defects ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;
  const int64_t n = bench::fast_mode() ? 40 : 100;

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = cfg.input_scale;

  report::Table t({"defect kind", "rate", "accuracy (3-seed mean)"});
  struct Case {
    const char* kind;
    double off, on;
  };
  const Case cases[] = {
      {"none", 0.0, 0.0},       {"stuck-off", 0.01, 0.0},
      {"stuck-off", 0.05, 0.0}, {"stuck-off", 0.10, 0.0},
      {"stuck-on", 0.0, 0.01},  {"stuck-on", 0.0, 0.02},
      {"stuck-on", 0.0, 0.05},  {"both", 0.05, 0.02},
  };
  for (const Case& c : cases) {
    double acc = 0.0;
    const int seeds = c.off == 0.0 && c.on == 0.0 ? 1 : 3;
    for (int seed = 0; seed < seeds; ++seed) {
      snc::SncConfig scfg = base;
      scfg.device.stuck_off_rate = c.off;
      scfg.device.stuck_on_rate = c.on;
      scfg.seed = 7 + static_cast<uint64_t>(seed);
      snc::SncSystem sys(net, {1, 28, 28}, scfg);
      acc += snc_accuracy(sys, *mnist.test, n);
    }
    t.add_row({c.kind, report::fmt(std::max(c.off, c.on), 2),
               report::pct(acc / seeds)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("stuck-on defects dominate the damage, matching [16]'s "
              "motivation for defect-aware remapping.\n");
  return 0;
}
