// Kernel-level micro-benchmarks (google-benchmark): GEMM, im2col,
// convolution forward, crossbar reads, quantizers, spike coding.
//
// In addition to the google-benchmark suite, main() runs two sweeps and
// writes them to BENCH_kernels.json (override the path with
// QSNC_BENCH_OUT):
//  * a kernel-dispatch sweep over the model-zoo GEMM shapes comparing the
//    scalar reference, AVX2, and integer (igemm) paths at one thread, with
//    speedup-vs-matching-scalar per row;
//  * a thread-scaling sweep over {1, 2, 4, hw_max} threads for the GEMM
//    and conv hot paths, with speedup-vs-1-thread per row.
// QSNC_REQUIRE_SIMD=1 makes the binary exit nonzero when the AVX2 kernels
// are not active (CI uses this to catch a silent scalar fallback on an
// AVX2 runner).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "nn/gemm.h"
#include "nn/igemm.h"
#include "nn/im2col.h"
#include "nn/layers/conv2d.h"
#include "nn/rng.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "snc/crossbar.h"
#include "snc/spike.h"
#include "util/thread_pool.h"

using namespace qsnc;

namespace {

std::vector<float> random_vec(int64_t n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Thread-count-parameterized GEMM: range(0) = matrix extent, range(1) =
// pool size. Compare against the threads:1 row for scaling.
void BM_GemmThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const int prev = util::num_threads();
  util::set_num_threads(threads);
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel("threads:" + std::to_string(threads));
  util::set_num_threads(prev);
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{256}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_Im2Col(benchmark::State& state) {
  const int64_t c = 16, h = 32, w = 32, k = 3;
  const auto img = random_vec(c * h * w, 3);
  std::vector<float> cols(static_cast<size_t>(c * k * k * h * w));
  for (auto _ : state) {
    nn::im2col(img.data(), c, h, w, k, k, 1, 1, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  nn::Rng rng(4);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  nn::Tensor x({1, 16, 32, 32});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0f, 1.0f);
  for (auto _ : state) {
    nn::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

// Batched conv forward across pool sizes (parallel over images).
void BM_ConvForwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int prev = util::num_threads();
  util::set_num_threads(threads);
  nn::Rng rng(4);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  nn::Tensor x({8, 16, 32, 32});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0f, 1.0f);
  for (auto _ : state) {
    nn::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel("threads:" + std::to_string(threads));
  util::set_num_threads(prev);
}
BENCHMARK(BM_ConvForwardThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CrossbarRead(benchmark::State& state) {
  snc::MemristorConfig cfg;
  snc::Crossbar xb(32, 32, cfg);
  nn::Rng rng(5);
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 32; ++c) {
      xb.program_cell(r, c, rng.uniform_int(0, 8), 8);
    }
  }
  std::vector<double> volts(32, 0.5);
  for (auto _ : state) {
    auto currents = xb.read_columns(volts);
    benchmark::DoNotOptimize(currents.data());
  }
}
BENCHMARK(BM_CrossbarRead);

void BM_SignalQuantizer(benchmark::State& state) {
  core::IntegerSignalQuantizer q(4);
  const auto values = random_vec(4096, 6);
  std::vector<float> out(values.size());
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = q.apply(values[i] * 20.0f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SignalQuantizer);

void BM_WeightClustering(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto base = random_vec(n, 7);
  for (auto _ : state) {
    std::vector<float> w = base;
    core::WeightClusterConfig cfg;
    cfg.bits = 4;
    auto r = core::cluster_weight_set({w.data()}, {n}, cfg);
    benchmark::DoNotOptimize(r.scale);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WeightClustering)->Arg(1 << 12)->Arg(1 << 16);

void BM_RateEncode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int64_t v = 0; v <= snc::window_slots(bits); ++v) {
      auto train = snc::rate_encode(v, bits);
      benchmark::DoNotOptimize(train.data());
    }
  }
}
BENCHMARK(BM_RateEncode)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Thread-scaling sweep -> BENCH_kernels.json
// ---------------------------------------------------------------------------

struct SweepRow {
  std::string kernel;
  int threads;
  double seconds;   // best of reps
  double gflops;    // flops / seconds / 1e9
  double speedup;   // vs the 1-thread row of the same kernel
};

// Times `fn` (one full kernel invocation) and returns best-of-reps seconds.
template <typename Fn>
double time_best(Fn&& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// QSNC_BENCH_SMOKE=1 shrinks the sweep to tiny shapes and two thread
// counts so CI can exercise the code path in seconds; reported numbers
// are then meaningless as benchmarks.
bool smoke_mode() {
  const char* v = std::getenv("QSNC_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

std::vector<int> sweep_thread_counts() {
  if (smoke_mode()) return {1, 2};
  std::vector<int> counts = {1, 2, 4, util::ThreadPool::default_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// Kernel-dispatch sweep at one thread: fp32 scalar vs AVX2 vs integer
// GEMM over the model-zoo shapes (conv im2col matrices and dense heads).
// speedup is vs the matching scalar row, so the fp32 SIMD rows carry the
// headline ">= 3x" acceptance number and the igemm rows the integer-path
// gain.
void run_dispatch_sweep(std::vector<SweepRow>& rows) {
  struct GemmShape {
    int64_t m, k, n;
    const char* tag;
  };
  const std::vector<GemmShape> shapes =
      smoke_mode()
          ? std::vector<GemmShape>{{6, 25, 784, "lenet_conv1"},
                                   {64, 300, 16, "dense_head"}}
          : std::vector<GemmShape>{{6, 25, 784, "lenet_conv1"},
                                   {12, 150, 100, "lenet_conv2"},
                                   {64, 288, 64, "alexnet_conv3"},
                                   {64, 300, 16, "dense_head"},
                                   {128, 96, 64, "wide_batch"},
                                   {256, 256, 256, "square_256"}};
  const int prev = util::num_threads();
  util::set_num_threads(1);  // isolate ISA dispatch from threading
  const int reps = smoke_mode() ? 2 : 5;

  for (const GemmShape& s : shapes) {
    const auto a = random_vec(s.m * s.k, 1);
    const auto b = random_vec(s.k * s.n, 2);
    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    std::vector<int16_t> ia(a.size()), ib(b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ia[i] = static_cast<int16_t>(std::lround(a[i] * 15.0f));
    }
    for (size_t i = 0; i < b.size(); ++i) {
      ib[i] = static_cast<int16_t>(std::lround(b[i] * 7.0f));
    }
    std::vector<int32_t> ic(static_cast<size_t>(s.m * s.n));
    const double flops = 2.0 * static_cast<double>(s.m) * s.k * s.n;

    auto timed = [&](bool force_scalar, auto&& run) {
      const bool prev_force = nn::simd::set_force_scalar(force_scalar);
      run();  // warm-up
      const double seconds = time_best(run, reps);
      nn::simd::set_force_scalar(prev_force);
      return seconds;
    };
    auto fp32 = [&] { nn::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); };
    auto integer = [&] {
      nn::igemm(ia.data(), ib.data(), ic.data(), s.m, s.k, s.n);
    };
    const double fp32_scalar = timed(true, fp32);
    const double fp32_simd = timed(false, fp32);
    const double int_scalar = timed(true, integer);
    const double int_simd = timed(false, integer);

    const std::string tag = s.tag;
    rows.push_back({"gemm_fp32_scalar_" + tag, 1, fp32_scalar,
                    flops / fp32_scalar / 1e9, 1.0});
    rows.push_back({"gemm_fp32_simd_" + tag, 1, fp32_simd,
                    flops / fp32_simd / 1e9, fp32_scalar / fp32_simd});
    rows.push_back({"igemm_scalar_" + tag, 1, int_scalar,
                    flops / int_scalar / 1e9, 1.0});
    rows.push_back({"igemm_simd_" + tag, 1, int_simd,
                    flops / int_simd / 1e9, int_scalar / int_simd});
  }
  util::set_num_threads(prev);
}

void run_thread_sweep(std::vector<SweepRow>& rows) {
  const int prev = util::num_threads();
  const std::vector<int> counts = sweep_thread_counts();

  auto sweep = [&](const std::string& kernel, double flops, auto&& run) {
    double base_seconds = 0.0;
    for (int threads : counts) {
      util::set_num_threads(threads);
      run();  // warm-up: populates thread-local scratch, faults pages
      const double seconds = time_best(run, 3);
      if (threads == 1) base_seconds = seconds;
      rows.push_back({kernel, threads, seconds, flops / seconds / 1e9,
                      base_seconds > 0.0 ? base_seconds / seconds : 1.0});
    }
  };

  const std::vector<int64_t> gemm_sizes =
      smoke_mode() ? std::vector<int64_t>{64} : std::vector<int64_t>{256, 384};
  for (int64_t n : gemm_sizes) {
    const auto a = random_vec(n * n, 1);
    const auto b = random_vec(n * n, 2);
    std::vector<float> c(static_cast<size_t>(n * n));
    sweep("gemm_" + std::to_string(n),
          2.0 * static_cast<double>(n) * n * n,
          [&] { nn::gemm(a.data(), b.data(), c.data(), n, n, n); });
  }

  {
    const int64_t batch = smoke_mode() ? 1 : 8, ic = 16, oc = 32,
                  hw = smoke_mode() ? 8 : 32, k = 3;
    nn::Rng rng(4);
    nn::Conv2d conv(ic, oc, k, 1, 1, rng);
    nn::Tensor x({batch, ic, hw, hw});
    for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0f, 1.0f);
    const double flops =
        2.0 * batch * oc * ic * k * k * hw * hw;  // stride 1, same padding
    sweep("conv_fwd_b8_16x32x32", flops, [&] {
      nn::Tensor y = conv.forward(x, false);
      benchmark::DoNotOptimize(y.data());
    });
  }

  util::set_num_threads(prev);
}

void emit_rows(const std::vector<SweepRow>& rows) {
  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_kernels.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "thread sweep: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"hardware_threads\": %d,\n  \"avx2\": %s,\n"
               "  \"results\": [\n",
               util::ThreadPool::default_threads(),
               nn::simd::use_avx2() ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.6g, \"gflops\": %.4g, \"speedup\": %.3g}%s\n",
                 r.kernel.c_str(), r.threads, r.seconds, r.gflops, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\n== kernel sweeps (avx2 %s) ==\n",
              nn::simd::use_avx2() ? "on" : "off");
  std::printf("%-30s %8s %12s %10s %9s\n", "kernel", "threads", "seconds",
              "GFLOP/s", "speedup");
  for (const SweepRow& r : rows) {
    std::printf("%-30s %8d %12.6f %10.2f %8.2fx\n", r.kernel.c_str(),
                r.threads, r.seconds, r.gflops, r.speedup);
  }
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* require_simd = std::getenv("QSNC_REQUIRE_SIMD");
  if (require_simd != nullptr && require_simd[0] == '1' &&
      !nn::simd::use_avx2()) {
    std::fprintf(stderr,
                 "QSNC_REQUIRE_SIMD=1 but the AVX2 kernels are inactive "
                 "(cpu_has_avx2=%d, env_forced_scalar=%d)\n",
                 nn::simd::cpu_has_avx2() ? 1 : 0,
                 nn::simd::env_forced_scalar() ? 1 : 0);
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::vector<SweepRow> rows;
  run_dispatch_sweep(rows);
  run_thread_sweep(rows);
  emit_rows(rows);
  return 0;
}
