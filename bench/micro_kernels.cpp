// Kernel-level micro-benchmarks (google-benchmark): GEMM, im2col,
// convolution forward, crossbar reads, quantizers, spike coding.
#include <benchmark/benchmark.h>

#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "nn/gemm.h"
#include "nn/im2col.h"
#include "nn/layers/conv2d.h"
#include "nn/rng.h"
#include "nn/tensor.h"
#include "snc/crossbar.h"
#include "snc/spike.h"

using namespace qsnc;

namespace {

std::vector<float> random_vec(int64_t n, uint64_t seed) {
  nn::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  const int64_t c = 16, h = 32, w = 32, k = 3;
  const auto img = random_vec(c * h * w, 3);
  std::vector<float> cols(static_cast<size_t>(c * k * k * h * w));
  for (auto _ : state) {
    nn::im2col(img.data(), c, h, w, k, k, 1, 1, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_ConvForward(benchmark::State& state) {
  nn::Rng rng(4);
  nn::Conv2d conv(16, 32, 3, 1, 1, rng);
  nn::Tensor x({1, 16, 32, 32});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0f, 1.0f);
  for (auto _ : state) {
    nn::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_CrossbarRead(benchmark::State& state) {
  snc::MemristorConfig cfg;
  snc::Crossbar xb(32, 32, cfg);
  nn::Rng rng(5);
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 32; ++c) {
      xb.program_cell(r, c, rng.uniform_int(0, 8), 8);
    }
  }
  std::vector<double> volts(32, 0.5);
  for (auto _ : state) {
    auto currents = xb.read_columns(volts);
    benchmark::DoNotOptimize(currents.data());
  }
}
BENCHMARK(BM_CrossbarRead);

void BM_SignalQuantizer(benchmark::State& state) {
  core::IntegerSignalQuantizer q(4);
  const auto values = random_vec(4096, 6);
  std::vector<float> out(values.size());
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = q.apply(values[i] * 20.0f);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SignalQuantizer);

void BM_WeightClustering(benchmark::State& state) {
  const int64_t n = state.range(0);
  const auto base = random_vec(n, 7);
  for (auto _ : state) {
    std::vector<float> w = base;
    core::WeightClusterConfig cfg;
    cfg.bits = 4;
    auto r = core::cluster_weight_set({w.data()}, {n}, cfg);
    benchmark::DoNotOptimize(r.scale);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WeightClustering)->Arg(1 << 12)->Arg(1 << 16);

void BM_RateEncode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int64_t v = 0; v <= snc::window_slots(bits); ++v) {
      auto train = snc::rate_encode(v, bits);
      benchmark::DoNotOptimize(train.data());
    }
  }
}
BENCHMARK(BM_RateEncode)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
