// Extension bench: crossbar programming (deployment) cost versus device
// precision — the paper's Sec 1 argument for stopping at 3/4-bit devices
// even though 6-bit memristors exist (HP Labs, ref [16]).
#include <cstdio>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"
#include "snc/programming.h"

using namespace qsnc;

int main() {
  std::printf("== Extension: programming cost vs device precision ==\n");

  report::Table t({"model", "weight bits", "device bits", "slices",
                   "cells", "pulses/cell", "time (ms)", "energy (uJ)"});
  struct Case {
    const char* name;
    nn::Network (*factory)(nn::Rng&);
    nn::Shape input;
  };
  const Case cases[] = {{"Lenet", models::make_lenet, {1, 28, 28}},
                        {"Alexnet", models::make_alexnet, {3, 32, 32}}};

  for (const Case& c : cases) {
    nn::Rng rng(1);
    nn::Network net = c.factory(rng);
    const snc::ModelMapping m = snc::map_network(net, c.name, c.input, 32);
    struct Point {
      int weight_bits;
      int device_bits;
    };
    const Point points[] = {{3, 3}, {4, 4}, {6, 6}, {8, 4}};
    for (const Point& pt : points) {
      snc::ProgrammingParams params;
      params.device_bits = pt.device_bits;
      params.parallel_rows = 32;
      const snc::ProgrammingCost cost =
          snc::evaluate_programming(m, pt.weight_bits, params);
      t.add_row({c.name, std::to_string(pt.weight_bits),
                 std::to_string(pt.device_bits),
                 std::to_string(snc::weight_slices(pt.weight_bits,
                                                   pt.device_bits)),
                 std::to_string(cost.cells),
                 report::fmt(snc::pulses_per_cell(pt.weight_bits, params), 0),
                 report::fmt(cost.time_ms, 2),
                 report::fmt(cost.energy_uj, 1)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("6-bit devices pay 4x the write pulses of 4-bit ones, and "
              "8-bit weights pay the 2x slice tax on top — the programming "
              "wall that keeps the paper's designs at N <= 4.\n");
  return 0;
}
