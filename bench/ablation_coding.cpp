// Ablation: spike-domain deployment effects on the SNC simulator —
// deterministic vs stochastic rate coding, ideal vs online IFC
// integration, and device programming variation. These are effects the
// accuracy pipeline (which stops at the quantized network) cannot see.
#include "bench_common.h"
#include "core/fixed_point.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("== Ablation: SNC coding / integration / variation ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;
  const int64_t n = bench::fast_mode() ? 40 : 100;

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = cfg.input_scale;

  report::Table t({"integration", "coding", "variation", "accuracy"});
  struct Case {
    snc::IntegrationMode mode;
    bool stochastic;
    double sigma;
  };
  const Case cases[] = {
      {snc::IntegrationMode::kIdealIntegration, false, 0.0},
      {snc::IntegrationMode::kOnline, false, 0.0},
      {snc::IntegrationMode::kOnline, true, 0.0},
      {snc::IntegrationMode::kIdealIntegration, false, 0.05},
      {snc::IntegrationMode::kIdealIntegration, false, 0.15},
  };
  for (const Case& c : cases) {
    snc::SncConfig scfg = base;
    scfg.mode = c.mode;
    scfg.stochastic_coding = c.stochastic;
    scfg.device.variation_sigma = c.sigma;
    snc::SncSystem sys(net, {1, 28, 28}, scfg);
    t.add_row({c.mode == snc::IntegrationMode::kIdealIntegration ? "ideal"
                                                                 : "online",
               c.stochastic ? "stochastic" : "deterministic",
               report::fmt(c.sigma, 2),
               report::pct(snc_accuracy(sys, *mnist.test, n))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("deterministic coding + ideal integration matches the "
              "quantized network; stochastic coding and device variation "
              "cost accuracy, online IFC semantics very little.\n");
  return 0;
}
