// Reproduces paper Table 3: accuracy after weight quantization to 5/4/3-bit
// fixed point, with and without Weight Clustering (signals stay fp32).
#include "bench_common.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Table 3: Weight quantization w/ and w/o Weight "
              "Clustering ==\n");
  const std::vector<int> bits{5, 4, 3};

  const bench::Workload mnist = bench::mnist_workload();
  bench::print_experiment(
      core::run_weight_experiment(models::make_lenet, "Lenet", *mnist.train,
                                  *mnist.test, bits,
                                  bench::lenet_train_config()),
      "Lenet w/o 98.16/97.86/94.52 -> w/ 98.16/98.1/97.79 "
      "(recovered 0/0.24/3.27 pp)");

  const bench::Workload cifar = bench::cifar_workload();
  bench::print_experiment(
      core::run_weight_experiment(models::make_alexnet_mini, "Alexnet",
                                  *cifar.train, *cifar.test, bits,
                                  bench::alexnet_train_config()),
      "Alexnet w/o 83.02/79.19/75.33 -> w/ 85.26/83.59/82.92 "
      "(recovered 2.28/4.4/7.59 pp)");

  bench::print_experiment(
      core::run_weight_experiment(models::make_resnet_mini, "Resnet",
                                  *cifar.train, *cifar.test, bits,
                                  bench::resnet_train_config()),
      "Resnet w/o 91/77.12/29 -> w/ 92.8/91/88.1 "
      "(recovered 1.8/12.88/59.1 pp)");
  return 0;
}
