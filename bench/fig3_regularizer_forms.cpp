// Reproduces paper Figure 3: the four regularization forms at bit width
// M = 2 — none, l1-norm, truncated l1-norm, and the proposed Eq 3 form —
// tabulated over the signal axis and sketched as ASCII curves.
#include <cstdio>
#include <string>
#include <vector>

#include "core/neuron_convergence.h"
#include "report/table.h"

using namespace qsnc;

int main() {
  std::printf("== Figure 3: regularization forms (M = 2, threshold 2) ==\n");
  const int bits = 2;
  const core::L1SignalRegularizer l1(1.0f);
  const core::TruncatedL1Regularizer trunc(bits, 1.0f);
  const core::NeuronConvergenceRegularizer proposed(bits, 1.0f, 0.1f);

  report::Table t({"o", "none", "l1", "truncated l1", "proposed (Eq 3)"});
  std::vector<float> xs;
  for (float o = -4.0f; o <= 4.01f; o += 0.5f) xs.push_back(o);
  for (float o : xs) {
    t.add_row({report::fmt(o, 1), "0", report::fmt(l1.penalty(o), 2),
               report::fmt(trunc.penalty(o), 2),
               report::fmt(proposed.penalty(o), 2)});
  }
  std::printf("%s", t.to_string().c_str());

  // ASCII sketch of the proposed curve: flat-ish (slope alpha) inside the
  // range, steep (slope 1+alpha) outside.
  std::printf("\nproposed rg(o), o in [-4, 4]:\n");
  for (float o = -4.0f; o <= 4.01f; o += 0.5f) {
    const int len = static_cast<int>(proposed.penalty(o) * 16.0f);
    std::printf("%5.1f | %s\n", o, std::string(len, '#').c_str());
  }
  std::printf("\nkey property: only the proposed form is simultaneously "
              "sparsity-inducing (nonzero slope at 0) and range-fixing "
              "(steep beyond 2^{M-1}).\n");
  return 0;
}
