// Extension bench: deployed accuracy under crossbar IR drop (wire
// resistance), the dominant analog non-ideality in large arrays and the
// reason Eq 1 tiles layers into 32x32 crossbars rather than one big array.
#include "bench_common.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("== Extension: accuracy under crossbar IR drop ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;
  const int64_t n = bench::fast_mode() ? 40 : 100;

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = cfg.input_scale;

  report::Table t({"wire R per segment", "accuracy"});
  for (double r_wire : {0.0, 100.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    snc::SncConfig scfg = base;
    scfg.device.wire_resistance_ohm = r_wire;
    snc::SncSystem sys(net, {1, 28, 28}, scfg);
    t.add_row({report::fmt(r_wire, 0) + " Ohm",
               report::pct(snc_accuracy(sys, *mnist.test, n))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("IR drop biases large weighted sums downward; accuracy "
              "degrades smoothly with wire resistance, motivating the "
              "32x32 tiling of Eq 1 (and calibration-aware mapping as "
              "future work).\n");
  return 0;
}
