// Extension bench: the proposed Weight Clustering against the related-work
// weight grids the paper cites — binary [18]/[9], ternary one-level
// synapses [17], integer power-of-two [24], and 8-bit dynamic fixed point
// [23] — all converting the *same* trained LeNet (signals stay fp32 so the
// comparison isolates the weight grid).
#include "bench_common.h"
#include "core/dynamic_fixed_point.h"
#include "core/metrics.h"
#include "core/related_baselines.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"

using namespace qsnc;

int main() {
  std::printf("== Extension: weight-grid baseline comparison (LeNet) ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::train(net, *mnist.train, cfg);
  const double ideal =
      core::evaluate_accuracy(net, *mnist.test, cfg.input_scale);
  const nn::NetworkState trained = nn::snapshot(net);
  std::printf("ideal fp32: %s\n\n", report::pct(ideal).c_str());

  report::Table t({"weight grid", "distinct levels", "accuracy", "drop"});
  auto add = [&](const char* name, const char* levels, double acc) {
    t.add_row({name, levels, report::pct(acc),
               report::fmt((ideal - acc) * 100.0, 2) + " pp"});
  };

  {
    nn::restore(net, trained);
    core::apply_binary_weights(net);
    add("binary sign(w)*s  [18]", "2",
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale));
  }
  {
    nn::restore(net, trained);
    core::apply_ternary_weights(net);
    add("ternary one-level [17]", "3",
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale));
  }
  {
    nn::restore(net, trained);
    core::apply_power_of_two_weights(net, 4);
    add("power-of-two (4 exps) [24]", "9",
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale));
  }
  {
    nn::restore(net, trained);
    core::DfpConfig dfp;
    dfp.input_scale = cfg.input_scale;
    auto quantizers = apply_dynamic_fixed_point(net, *mnist.train, dfp);
    net.set_signal_quantizer(nullptr);  // weights only for this bench
    add("8-bit dyn. fixed point [23]", "255",
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale));
  }
  for (int bits : {2, 3, 4}) {
    nn::restore(net, trained);
    core::WeightClusterConfig wc;
    wc.bits = bits;
    const auto wcr = core::apply_weight_clustering(net, wc);
    core::TrainConfig ft = cfg;
    ft.epochs = 2;
    ft.lr = cfg.lr * 0.1f;
    core::fine_tune_quantized(net, *mnist.train, ft, 0, wc, wcr);
    char name[64];
    std::snprintf(name, sizeof(name), "proposed clustering %d-bit", bits);
    add(name, std::to_string((1 << bits) + 1).c_str(),
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("the clustered linear grid reaches near-ideal accuracy with "
              "far fewer levels than dynamic fixed point, while the binary/"
              "ternary grids (which need no DACs at all) pay several "
              "points — the design space the paper's intro surveys.\n");
  return 0;
}
