// Ablation: the Eq 3 sparsity slope alpha, fixed "empirically" at 0.1 in
// the paper. Sweeps alpha for 4-bit LeNet signal quantization.
#include "bench_common.h"
#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Ablation: Eq 3 alpha (LeNet, 4-bit signals) ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;

  report::Table t({"alpha", "quantized accuracy", "mean |signal|"});
  for (float alpha : {0.0f, 0.05f, 0.1f, 0.2f, 0.5f, 1.0f}) {
    nn::Rng rng(cfg.seed);
    nn::Network net = models::make_lenet(rng);
    core::NeuronConvergenceRegularizer reg(bits, 0.1f, alpha);
    core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);

    // Mean absolute signal value on a test batch (sparsity proxy).
    class MeanAbs final : public nn::SignalQuantizer {
     public:
      float apply(float o) const override {
        sum_ += std::fabs(o);
        ++count_;
        return o;
      }
      bool pass_through(float) const override { return true; }
      double mean() const { return count_ ? sum_ / count_ : 0.0; }

     private:
      mutable double sum_ = 0.0;
      mutable int64_t count_ = 0;
    };
    MeanAbs meter;
    net.set_signal_quantizer(&meter);
    nn::Tensor batch = mnist.test->batch_images(0, 64);
    batch *= cfg.input_scale;
    net.forward(batch, false);

    core::IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    const double acc =
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);
    t.add_row({report::fmt(alpha, 2), report::pct(acc),
               report::fmt(meter.mean(), 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("paper uses alpha = 0.1; larger alpha buys sparsity (cheaper "
              "spikes) at an accuracy price once it dominates the loss.\n");
  return 0;
}
