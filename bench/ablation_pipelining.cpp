// Extension bench: what slot-level pipelining would buy. The paper's SNC
// issues one spike wave at a time (the IFC membranes of layer l+1 must
// settle on slot s before slot s+1's currents arrive); streaming IFCs
// could overlap slots across stages. The discrete-event timing simulator
// quantifies the gap for every model and bit width.
#include <cstdio>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"
#include "snc/spike.h"
#include "snc/timing_sim.h"

using namespace qsnc;

int main() {
  std::printf("== Extension: sequential-wave vs slot-pipelined timing ==\n");
  report::Table t({"model", "bits", "sequential (MHz)", "pipelined (MHz)",
                   "gain", "seq. utilization", "pipe. utilization"});

  struct ModelCase {
    const char* name;
    nn::Network (*factory)(nn::Rng&);
    nn::Shape input;
  };
  const ModelCase cases[] = {
      {"Lenet", models::make_lenet, {1, 28, 28}},
      {"Alexnet", models::make_alexnet, {3, 32, 32}},
      {"Resnet", models::make_resnet, {3, 32, 32}},
  };

  for (const ModelCase& mc : cases) {
    nn::Rng rng(1);
    nn::Network net = mc.factory(rng);
    const snc::ModelMapping m = snc::map_network(net, mc.name, mc.input, 32);
    for (int bits : {3, 4, 8}) {
      snc::TimingConfig seq;
      snc::TimingConfig pipe;
      pipe.discipline = snc::PipelineDiscipline::kSlotPipelined;
      const snc::TimingResult rs =
          snc::simulate_window(m.layer_count(), snc::window_slots(bits), seq);
      const snc::TimingResult rp = snc::simulate_window(
          m.layer_count(), snc::window_slots(bits), pipe);
      t.add_row({mc.name, std::to_string(bits),
                 report::fmt(rs.speed_mhz, 2), report::fmt(rp.speed_mhz, 2),
                 report::fmt(rp.speed_mhz / rs.speed_mhz, 1) + "x",
                 report::pct(rs.utilization, 1),
                 report::pct(rp.utilization, 1)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("pipelining approaches an L-fold gain for long windows "
              "(8-bit) and helps least exactly where the proposed low-bit "
              "designs already live — quantization and pipelining attack "
              "the same bottleneck.\n");
  return 0;
}
