// Extension bench: what slot-level pipelining would buy. The paper's SNC
// issues one spike wave at a time (the IFC membranes of layer l+1 must
// settle on slot s before slot s+1's currents arrive); streaming IFCs
// could overlap slots across stages. The discrete-event timing simulator
// quantifies the gap for every model and bit width.
#include <cstdio>
#include <vector>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"
#include "snc/spike.h"
#include "snc/timing_sim.h"

using namespace qsnc;

int main() {
  std::printf("== Extension: sequential-wave vs slot-pipelined timing ==\n");
  report::Table t({"model", "bits", "sequential (MHz)", "pipelined (MHz)",
                   "gain", "seq. utilization", "pipe. utilization"});

  struct ModelCase {
    const char* name;
    nn::Network (*factory)(nn::Rng&);
    nn::Shape input;
  };
  const ModelCase cases[] = {
      {"Lenet", models::make_lenet, {1, 28, 28}},
      {"Alexnet", models::make_alexnet, {3, 32, 32}},
      {"Resnet", models::make_resnet, {3, 32, 32}},
  };

  // Collect every (model, bits, discipline) point up front and simulate the
  // whole grid in one simulate_windows call — the points are independent, so
  // the batch API spreads them across the thread pool.
  struct SweepPoint {
    const char* model;
    int bits;
  };
  std::vector<SweepPoint> points;
  std::vector<snc::WindowSpec> specs;
  for (const ModelCase& mc : cases) {
    nn::Rng rng(1);
    nn::Network net = mc.factory(rng);
    const snc::ModelMapping m = snc::map_network(net, mc.name, mc.input, 32);
    for (int bits : {3, 4, 8}) {
      snc::WindowSpec spec;
      spec.layers = m.layer_count();
      spec.window_slots = snc::window_slots(bits);
      specs.push_back(spec);  // sequential wave
      spec.config.discipline = snc::PipelineDiscipline::kSlotPipelined;
      specs.push_back(spec);
      points.push_back({mc.name, bits});
    }
  }

  const std::vector<snc::TimingResult> results = snc::simulate_windows(specs);
  for (size_t p = 0; p < points.size(); ++p) {
    const snc::TimingResult& rs = results[2 * p];
    const snc::TimingResult& rp = results[2 * p + 1];
    t.add_row({points[p].model, std::to_string(points[p].bits),
               report::fmt(rs.speed_mhz, 2), report::fmt(rp.speed_mhz, 2),
               report::fmt(rp.speed_mhz / rs.speed_mhz, 1) + "x",
               report::pct(rs.utilization, 1),
               report::pct(rp.utilization, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("pipelining approaches an L-fold gain for long windows "
              "(8-bit) and helps least exactly where the proposed low-bit "
              "designs already live — quantization and pipelining attack "
              "the same bottleneck.\n");
  return 0;
}
