// Reproduces paper Table 2: accuracy after inter-layer signal quantization
// to 5/4/3-bit fixed integers, with and without Neuron Convergence
// (weights stay fp32).
#include "bench_common.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Table 2: Neuron quantization w/ and w/o Neuron "
              "Convergence ==\n");
  const std::vector<int> bits{5, 4, 3};
  const core::NcOptions nc;

  const bench::Workload mnist = bench::mnist_workload();
  bench::print_experiment(
      core::run_signal_experiment(models::make_lenet, "Lenet", *mnist.train,
                                  *mnist.test, bits,
                                  bench::lenet_train_config(), nc),
      "Lenet w/o 97.74/97/92.9 -> w/ 98.16/98.15/98.13 "
      "(recovered 0.42/1.15/5.24 pp)");

  const bench::Workload cifar = bench::cifar_workload();
  bench::print_experiment(
      core::run_signal_experiment(models::make_alexnet_mini, "Alexnet",
                                  *cifar.train, *cifar.test, bits,
                                  bench::alexnet_train_config(), nc),
      "Alexnet w/o 82.51/77.8/67.83 -> w/ 85.2/83.15/82.1 "
      "(recovered 2.69/4.95/14.27 pp)");

  bench::print_experiment(
      core::run_signal_experiment(models::make_resnet_mini, "Resnet",
                                  *cifar.train, *cifar.test, bits,
                                  bench::resnet_train_config(), nc),
      "Resnet w/o 91.37/75.72/26.57 -> w/ 92.5/91.33/88.95 "
      "(recovered 1.13/15.61/62.38 pp)");
  return 0;
}
