// Serving throughput sweep: backend x max-batch on lenet-mini through the
// full in-process queue -> micro-batcher -> backend pipeline. Closed-loop
// producer threads hammer a ServeCore; we record QPS and p50/p95/p99
// latency per configuration and write BENCH_serve.json (override the path
// with QSNC_BENCH_OUT).
//
// Flags: --requests N (per config, default 400; snc uses a quarter),
//        --producers N (default 4), --seconds-cap S (safety, default 120).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using namespace qsnc;

struct SweepPoint {
  std::string backend;
  std::string engine;  // snc only: "event" | "dense"; "-" otherwise
  uint32_t max_batch;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double avg_batch = 0.0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

std::vector<nn::Tensor> make_images(int n) {
  nn::Rng rng(77);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

SweepPoint run_point(serve::BackendKind backend, uint32_t max_batch,
                     int requests, int producers, double seconds_cap,
                     bool snc_dense_reference = false) {
  serve::ModelRegistry registry;
  serve::ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = backend;
  cfg.bits = 4;
  cfg.init_seed = 9;
  cfg.snc_dense_reference = snc_dense_reference;
  registry.add("m", cfg);

  serve::BatchOptions opts;
  opts.max_batch = max_batch;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 1024;
  serve::ServeCore core(registry, opts);
  serve::ServeClient client(core);

  const auto images = make_images(32);
  std::atomic<int> remaining{requests};
  std::atomic<uint64_t> client_rejects{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds_cap));

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      size_t next = static_cast<size_t>(p);
      while (remaining.fetch_sub(1) > 0 &&
             std::chrono::steady_clock::now() < deadline) {
        const nn::Tensor& img = images[next++ % images.size()];
        serve::Response r = client.infer("m", img);
        while (r.status == serve::Status::kRejected) {
          ++client_rejects;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min<uint64_t>(r.retry_after_us, 50000)));
          r = client.infer("m", img);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  core.drain();

  const serve::ModelStatsSnapshot stats = core.stats().front();
  SweepPoint point;
  point.backend = serve::backend_kind_name(backend);
  point.engine = backend == serve::BackendKind::kSnc
                     ? (snc_dense_reference ? "dense" : "event")
                     : "-";
  point.max_batch = max_batch;
  point.completed = stats.completed;
  point.rejected = client_rejects.load();
  point.seconds = seconds;
  point.qps = seconds > 0.0 ? static_cast<double>(stats.completed) / seconds
                            : 0.0;
  point.avg_batch = stats.batches > 0
                        ? static_cast<double>(stats.completed) /
                              static_cast<double>(stats.batches)
                        : 0.0;
  point.p50_us = stats.p50_us;
  point.p95_us = stats.p95_us;
  point.p99_us = stats.p99_us;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = flags.get_int("requests", 400);
  const int producers = flags.get_int("producers", 4);
  const double seconds_cap = flags.get_double("seconds-cap", 120.0);

  const std::vector<uint32_t> batch_sizes = {1, 4, 16};
  const std::vector<serve::BackendKind> backends = {
      serve::BackendKind::kFp32, serve::BackendKind::kQuant,
      serve::BackendKind::kSnc};

  std::vector<SweepPoint> points;
  for (serve::BackendKind backend : backends) {
    // Spike-level simulation is ~2 orders slower per image; keep the
    // sweep bounded without losing the batch-size trend.
    const int n = backend == serve::BackendKind::kSnc
                      ? std::max(requests / 4, 32)
                      : requests;
    for (uint32_t max_batch : batch_sizes) {
      std::printf("running %-5s max_batch=%-3u requests=%d ...\n",
                  serve::backend_kind_name(backend), max_batch, n);
      std::fflush(stdout);
      points.push_back(
          run_point(backend, max_batch, n, producers, seconds_cap));
    }
  }
  // One dense-reference snc row at the largest batch: the delta against
  // the event-driven rows above is what zero-skipping buys end to end.
  {
    const int n = std::max(requests / 4, 32);
    std::printf("running snc/dense max_batch=%-3u requests=%d ...\n",
                batch_sizes.back(), n);
    std::fflush(stdout);
    points.push_back(run_point(serve::BackendKind::kSnc, batch_sizes.back(),
                               n, producers, seconds_cap, true));
  }

  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_serve.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "serve_throughput: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"model\": \"lenet-mini\",\n  \"producers\": %d,\n"
               "  \"results\": [\n", producers);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"engine\": \"%s\", \"max_batch\": %u, "
        "\"completed\": %llu, "
        "\"client_rejects\": %llu, \"seconds\": %.4g, \"qps\": %.5g, "
        "\"avg_batch\": %.3g, \"p50_us\": %llu, \"p95_us\": %llu, "
        "\"p99_us\": %llu}%s\n",
        p.backend.c_str(), p.engine.c_str(), p.max_batch,
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.rejected), p.seconds, p.qps,
        p.avg_batch, static_cast<unsigned long long>(p.p50_us),
        static_cast<unsigned long long>(p.p95_us),
        static_cast<unsigned long long>(p.p99_us),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\n== serving throughput (lenet-mini, %d producers) ==\n",
              producers);
  std::printf("%-6s %-6s %9s %10s %10s %9s %8s %8s %8s\n", "backend",
              "engine", "max_batch", "completed", "QPS", "avg_batch",
              "p50_us", "p95_us", "p99_us");
  for (const SweepPoint& p : points) {
    std::printf("%-6s %-6s %9u %10llu %10.1f %9.2f %8llu %8llu %8llu\n",
                p.backend.c_str(), p.engine.c_str(), p.max_batch,
                static_cast<unsigned long long>(p.completed), p.qps,
                p.avg_batch, static_cast<unsigned long long>(p.p50_us),
                static_cast<unsigned long long>(p.p95_us),
                static_cast<unsigned long long>(p.p99_us));
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
