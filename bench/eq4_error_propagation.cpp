// Empirical validation of the paper's Eq 4 / Eq 5 argument: with Neuron
// Convergence the per-layer quantization error stays flat with depth
// (sparse, range-confined signals stop error transmission); with plain
// training the relative error compounds layer over layer. LeNet, 4-bit.
#include "bench_common.h"
#include "core/error_propagation.h"
#include "core/neuron_convergence.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Eq 4/5 check: per-layer quantization error propagation "
              "==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;

  auto analyze = [&](bool with_nc) {
    nn::Rng rng(cfg.seed);
    nn::Network net = models::make_lenet(rng);
    core::NeuronConvergenceRegularizer reg(bits, 0.1f);
    core::train(net, *mnist.train, cfg, with_nc ? &reg : nullptr,
                with_nc ? bits : 0, cfg.epochs - 2);
    return core::analyze_error_propagation(net, *mnist.test, bits,
                                           cfg.input_scale);
  };

  const auto plain = analyze(false);
  const auto nc = analyze(true);

  report::Table t({"signal layer", "plain rel.err", "plain sparsity",
                   "NC rel.err", "NC sparsity"});
  for (size_t i = 0; i < plain.size(); ++i) {
    t.add_row({std::to_string(i), report::pct(plain[i].relative_error, 1),
               report::pct(plain[i].sparsity, 1),
               report::pct(nc[i].relative_error, 1),
               report::pct(nc[i].sparsity, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("Eq 4's claim: the NC column's relative error should stay "
              "flat (or shrink) with depth while the plain column "
              "compounds; NC signals are also markedly sparser (the Eq 5 "
              "premise).\n");
  return 0;
}
