// Reproduces paper Table 5: memristor-based SNC system speed / energy /
// area for the three full-spec models at the 8-bit dynamic fixed point
// baseline versus the proposed 4-bit and 3-bit designs.
//
// The cost model's constants are calibrated once on the 8-bit LeNet row
// (see snc/cost_model.h); every other cell is predicted.
#include <cstdio>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/cost_model.h"

using namespace qsnc;

namespace {

struct PaperRow {
  double speed, speedup, energy, saving, area, area_saving;
};

void emit_model(const char* name, nn::Network (*factory)(nn::Rng&),
                const nn::Shape& input, const PaperRow paper[3],
                report::Table& t) {
  nn::Rng rng(1);
  nn::Network net = factory(rng);
  const snc::ModelMapping mapping = snc::map_network(net, name, input, 32);

  const snc::SystemCost base = snc::evaluate_cost(mapping, 8, 8);
  const snc::SystemCost p4 = snc::evaluate_cost(mapping, 4, 4);
  const snc::SystemCost p3 = snc::evaluate_cost(mapping, 3, 3);

  auto row = [&](const char* tag, const snc::SystemCost& c,
                 const PaperRow& p, bool is_base) {
    const snc::CostComparison cmp = snc::compare_cost(base, c);
    t.add_row({std::string(name) + " " + tag,
               std::to_string(c.layers),
               report::fmt(c.speed_mhz, 2),
               is_base ? "-" : report::fmt(cmp.speedup, 1) + "x",
               is_base ? "-" : report::fmt(p.speedup, 1) + "x",
               report::fmt(c.energy_uj, c.energy_uj < 10 ? 2 : 0),
               is_base ? "-" : report::fmt(cmp.energy_saving_pct, 1) + "%",
               is_base ? "-" : report::fmt(p.saving, 1) + "%",
               report::fmt(c.area_mm2, 2),
               is_base ? "-" : report::fmt(cmp.area_saving_pct, 1) + "%",
               is_base ? "-" : report::fmt(p.area_saving, 1) + "%"});
  };
  row("8-bit [23]", base, paper[0], true);
  row("4-bit", p4, paper[1], false);
  row("3-bit", p3, paper[2], false);
}

}  // namespace

int main() {
  std::printf("== Table 5: Memristor-based SNC system evaluation ==\n");
  report::Table t({"model", "Layers", "Speed (MHz)", "Speedup",
                   "paper", "Energy (uJ)", "E. Saving", "paper",
                   "Area (mm2)", "A. Saving", "paper"});

  const PaperRow lenet[3] = {{0.64, 0, 4.7, 0, 1.48, 0},
                             {8.93, 13.9, 0.57, 87.9, 1.04, 29.7},
                             {15.63, 24.4, 0.27, 94.3, 0.93, 37.2}};
  const PaperRow alexnet[3] = {{0.27, 0, 337.0, 0, 34.3, 0},
                               {2.66, 9.8, 36.9, 89.1, 24.0, 30.0},
                               {3.79, 11.8, 26.3, 92.2, 21.4, 37.6}};
  const PaperRow resnet[3] = {{0.11, 0, 19200, 0, 937.3, 0},
                              {1.38, 12.5, 1500, 92.2, 656.2, 30.0},
                              {2.20, 20.0, 935, 95.0, 585.9, 37.5}};

  emit_model("Lenet", models::make_lenet, {1, 28, 28}, lenet, t);
  emit_model("Alexnet", models::make_alexnet, {3, 32, 32}, alexnet, t);
  emit_model("Resnet", models::make_resnet, {3, 32, 32}, resnet, t);

  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\ncalibration: per-component constants fitted to the 8-bit LeNet row "
      "(paper: 0.64 MHz / 4.7 uJ / 1.48 mm2); all other cells predicted.\n"
      "8-bit rows use 2 crossbar slices per weight (4-bit devices).\n");
  return 0;
}
