// Reproduces paper Table 4: both quantizations combined (M-bit integer
// signals + N-bit fixed-point weights, M = N), with and without the
// proposed method, against the 8-bit dynamic fixed point baseline of [23].
#include "bench_common.h"
#include "models/model_zoo.h"

using namespace qsnc;

int main() {
  std::printf("== Table 4: Combined signal + weight quantization ==\n");
  const std::vector<int> bits{5, 4, 3};
  const core::NcOptions nc;

  const bench::Workload mnist = bench::mnist_workload();
  bench::print_experiment(
      core::run_combined_experiment(models::make_lenet, "Lenet",
                                    *mnist.train, *mnist.test, bits,
                                    bench::lenet_train_config(), nc),
      "Lenet 8-bit [23] 98.16; w/o 97.74/96.38/93.43 -> "
      "w/ 98.16/98.14/97.46");

  const bench::Workload cifar = bench::cifar_workload();
  bench::print_experiment(
      core::run_combined_experiment(models::make_alexnet_mini, "Alexnet",
                                    *cifar.train, *cifar.test, bits,
                                    bench::alexnet_train_config(), nc),
      "Alexnet 8-bit [23] 84.5; w/o 81.8/76.16/69.7 -> "
      "w/ 84.47/83.05/81.53");

  bench::print_experiment(
      core::run_combined_experiment(models::make_resnet_mini, "Resnet",
                                    *cifar.train, *cifar.test, bits,
                                    bench::resnet_train_config(), nc),
      "Resnet 8-bit [23] 91.75; w/o 91.03/75.16/22.18 -> "
      "w/ 91.48/90.33/87.71");
  return 0;
}
