// Reproduces paper Figure 1:
//  (a) spiking computation speed versus neuron (signal) precision — speed
//      collapses as the spike window grows with 2^M;
//  (b) accuracy loss caused by low-precision neurons versus low-precision
//      weights under direct post-training quantization (LeNet / MNIST) —
//      neurons hurt more, which motivates Neuron Convergence.
#include "bench_common.h"
#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"
#include "snc/cost_model.h"

using namespace qsnc;

int main() {
  std::printf("== Figure 1a: computation speed vs neuron precision ==\n");
  {
    nn::Rng rng(1);
    nn::Network net = models::make_lenet(rng);
    const snc::ModelMapping mapping =
        snc::map_network(net, "Lenet", {1, 28, 28}, 32);
    report::Table t({"neuron bits", "window slots", "speed (MHz)",
                     "relative to 8-bit"});
    const double base =
        snc::evaluate_cost(mapping, 8, 4).speed_mhz;
    for (int bits = 1; bits <= 8; ++bits) {
      const snc::SystemCost c = snc::evaluate_cost(mapping, bits, 4);
      t.add_row({std::to_string(bits), std::to_string(c.window_slots),
                 report::fmt(c.speed_mhz, 2),
                 report::fmt(c.speed_mhz / base, 1) + "x"});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf("\n== Figure 1b: accuracy loss, neurons vs weights ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();
  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::train(net, *mnist.train, cfg);
  const double ideal =
      core::evaluate_accuracy(net, *mnist.test, cfg.input_scale);
  const nn::NetworkState trained = nn::snapshot(net);
  std::printf("ideal fp32 accuracy: %s\n", report::pct(ideal).c_str());

  report::Table t({"bits", "neuron-only loss (pp)", "weight-only loss (pp)"});
  for (int bits = 8; bits >= 2; --bits) {
    // Neurons only.
    nn::restore(net, trained);
    core::IntegerSignalQuantizer q(bits);
    net.set_signal_quantizer(&q);
    const double acc_n =
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale, bits);
    net.set_signal_quantizer(nullptr);

    // Weights only (naive direct quantization, matching Fig 1's setting).
    nn::restore(net, trained);
    core::WeightClusterConfig wc;
    wc.bits = bits;
    wc.optimize_scale = false;
    core::apply_weight_clustering(net, wc);
    const double acc_w =
        core::evaluate_accuracy(net, *mnist.test, cfg.input_scale);

    t.add_row({std::to_string(bits),
               report::fmt((ideal - acc_n) * 100.0, 2),
               report::fmt((ideal - acc_w) * 100.0, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("paper claim: neuron discretization causes the larger loss "
              "and dominates speed; both reproduced above.\n");
  return 0;
}
