// Reproduces paper Figure 2 (textually): how a convolutional layer deploys
// onto memristor crossbars — filter j of layer i maps to bit line j, the
// receptive-field taps occupy s*s*d word lines, and Eq 1 tiles the logical
// matrix over 32x32 arrays. Prints the full mapping for every layer of the
// LeNet example plus the Eq 1 arithmetic for all three models.
#include <cstdio>

#include "models/model_zoo.h"
#include "report/table.h"
#include "snc/mapper.h"

using namespace qsnc;

namespace {

const char* kind_name(snc::LayerKind kind) {
  return kind == snc::LayerKind::kConv ? "conv" : "fc";
}

}  // namespace

int main() {
  std::printf("== Figure 2: deploying layers on crossbars ==\n\n");

  nn::Rng rng(1);
  nn::Network lenet = models::make_lenet(rng);
  const snc::ModelMapping m = snc::map_network(lenet, "Lenet", {1, 28, 28},
                                               32);

  std::printf("LeNet, crossbar size t = 32:\n");
  report::Table t({"layer", "kind", "filters J", "kernel s", "depth d",
                   "rows s*s*d", "cols J", "Eq1 tiles"});
  for (const snc::LayerMapping& l : m.layers) {
    t.add_row({l.desc.label, kind_name(l.desc.kind),
               std::to_string(l.desc.filters), std::to_string(l.desc.kernel),
               std::to_string(l.desc.in_channels), std::to_string(l.rows),
               std::to_string(l.cols), std::to_string(l.crossbars)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The conv2 tiling spelled out like the figure: BL_j holds filter j.
  const snc::LayerMapping& conv2 = m.layers[1];
  std::printf("conv2 in detail: each of the %lld filters (5x5x%lld taps) "
              "occupies one bit line;\n%lld word lines split over "
              "ceil(%lld/32) = %lld row tiles x ceil(%lld/32) = %lld column "
              "tiles -> %lld crossbars.\n\n",
              static_cast<long long>(conv2.cols),
              static_cast<long long>(conv2.desc.in_channels),
              static_cast<long long>(conv2.rows),
              static_cast<long long>(conv2.rows),
              static_cast<long long>((conv2.rows + 31) / 32),
              static_cast<long long>(conv2.cols),
              static_cast<long long>((conv2.cols + 31) / 32),
              static_cast<long long>(conv2.crossbars));

  report::Table totals({"model", "layers", "total rows", "total cols",
                        "total crossbars (Eq 1)"});
  struct Case {
    const char* name;
    nn::Network (*factory)(nn::Rng&);
    nn::Shape input;
  };
  const Case cases[] = {{"Lenet", models::make_lenet, {1, 28, 28}},
                        {"Alexnet", models::make_alexnet, {3, 32, 32}},
                        {"Resnet", models::make_resnet, {3, 32, 32}}};
  for (const Case& c : cases) {
    nn::Rng r2(1);
    nn::Network net = c.factory(r2);
    const snc::ModelMapping mm = snc::map_network(net, c.name, c.input, 32);
    totals.add_row({c.name, std::to_string(mm.layer_count()),
                    std::to_string(mm.total_rows()),
                    std::to_string(mm.total_cols()),
                    std::to_string(mm.total_crossbars())});
  }
  std::printf("%s", totals.to_string().c_str());
  return 0;
}
