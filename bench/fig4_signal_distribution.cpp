// Reproduces paper Figure 4: the distribution of the first hidden layer's
// output signals after LeNet training under four regularization regimes —
// none, l1-norm, truncated l1-norm, and the proposed Neuron Convergence
// (M = 4, threshold 8). The proposed form should yield signals that are
// both sparse and confined to [0, 8].
#include <memory>

#include "bench_common.h"
#include "core/neuron_convergence.h"
#include "models/model_zoo.h"

using namespace qsnc;

namespace {

/// Pass-through hook collecting the values flowing through a signal layer.
class CollectingQuantizer final : public nn::SignalQuantizer {
 public:
  float apply(float o) const override {
    values_.push_back(o);
    return o;
  }
  bool pass_through(float) const override { return true; }
  const std::vector<float>& values() const { return values_; }

 private:
  mutable std::vector<float> values_;
};

struct RegimeStats {
  double frac_zero = 0.0;   // |o| < 0.25 (sparsity)
  double frac_beyond = 0.0; // o > 8 (range violation)
  float max_value = 0.0f;
};

}  // namespace

int main() {
  std::printf("== Figure 4: 1st hidden layer signal distribution (M=4) "
              "==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const core::TrainConfig cfg = bench::lenet_train_config();

  const core::L1SignalRegularizer l1(0.1f);
  const core::TruncatedL1Regularizer trunc(4, 0.1f);
  const core::NeuronConvergenceRegularizer proposed(4, 0.1f, 0.1f);
  struct Regime {
    const char* name;
    const nn::SignalRegularizer* reg;
  };
  const Regime regimes[] = {{"(a) none", nullptr},
                            {"(b) l1-norm", &l1},
                            {"(c) truncated l1", &trunc},
                            {"(d) proposed", &proposed}};

  report::Table summary({"regime", "near-zero frac", "beyond-range frac",
                         "max signal"});
  for (const Regime& regime : regimes) {
    nn::Rng rng(cfg.seed);
    nn::Network net = models::make_lenet(rng);
    core::train(net, *mnist.train, cfg, regime.reg);

    // Collect the first ReLU's outputs over a test batch.
    CollectingQuantizer collector;
    net.signal_layers().front()->set_quantizer(&collector);
    nn::Tensor batch = mnist.test->batch_images(0, 64);
    batch *= cfg.input_scale;
    net.forward(batch, false);
    net.signal_layers().front()->set_quantizer(nullptr);

    const std::vector<float>& v = collector.values();
    RegimeStats stats;
    for (float o : v) {
      if (o < 0.25f) stats.frac_zero += 1.0;
      if (o > 8.0f) stats.frac_beyond += 1.0;
      stats.max_value = std::max(stats.max_value, o);
    }
    stats.frac_zero /= static_cast<double>(v.size());
    stats.frac_beyond /= static_cast<double>(v.size());

    std::printf("\n%s  (max %.1f)\n", regime.name, stats.max_value);
    std::printf("%s",
                report::ascii_histogram(v, 0.0f, 16.0f, 16, 48).c_str());
    summary.add_row({regime.name, report::pct(stats.frac_zero),
                     report::pct(stats.frac_beyond),
                     report::fmt(stats.max_value, 1)});
  }
  std::printf("\n%s", summary.to_string().c_str());
  std::printf("paper claim (Fig 4d): only the proposed regularizer gives "
              "signals that are sparse AND confined to [0, 2^{M-1}].\n");
  return 0;
}
