// Overload behavior under open-loop offered load: probe the serving
// capacity of an in-process lenet-mini core, then offer 1x/2x/4x that
// rate on a fixed arrival schedule (no retries, no adaptation) with a
// 6:3:1 interactive:batch:canary priority mix and CoDel-style shedding
// enabled. Reports goodput, shed/reject counts, and completion-latency
// percentiles per multiplier — the shape to look for is goodput holding
// near capacity past 1x while batch (then canary) traffic absorbs the
// sheds and interactive p99 stays bounded. Writes BENCH_overload.json
// (override with QSNC_BENCH_OUT).
//
// Flags: --seconds S (per point, default 2), --probe-requests N
//        (default 2000), --max-rate R (schedule cap, default 50000).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using namespace qsnc;
using Clock = std::chrono::steady_clock;

serve::ModelConfig model_config() {
  serve::ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = serve::BackendKind::kFp32;
  cfg.init_seed = 9;
  return cfg;
}

std::vector<nn::Tensor> make_images(int n) {
  nn::Rng rng(77);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

/// Closed-loop capacity probe: hammer the core with a few producer
/// threads and read the sustained completion rate off the stats.
double probe_capacity(int requests) {
  serve::ModelRegistry registry;
  registry.add("m", model_config());
  serve::BatchOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 1024;
  serve::ServeCore core(registry, opts);
  const auto images = make_images(32);

  const int producers = 4;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = p; i < requests; i += producers) {
        (void)core.infer("m", images[static_cast<size_t>(i) %
                                     images.size()]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return seconds > 0 ? requests / seconds : 0.0;
}

struct ClassCounts {
  uint64_t ok = 0, shed = 0, rejected = 0, errors = 0;
};

struct OverloadPoint {
  double multiplier = 0.0;
  double offered_qps = 0.0;
  uint64_t sent = 0;
  ClassCounts per[serve::kNumPriorities];
  ClassCounts total;
  double seconds = 0.0;
  double goodput_qps = 0.0;
  uint64_t p50_us = 0, p99_us = 0;
};

serve::Priority priority_of(uint64_t i) {
  const uint64_t r = i % 10;  // 6:3:1 interactive:batch:canary
  if (r < 6) return serve::Priority::kInteractive;
  if (r < 9) return serve::Priority::kBatch;
  return serve::Priority::kCanary;
}

OverloadPoint run_point(double multiplier, double rate, double seconds) {
  serve::ModelRegistry registry;
  registry.add("m", model_config());
  serve::BatchOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 4096;
  opts.admission.delay_target_us = 5000;
  opts.admission.delay_window_us = 20000;
  serve::ServeCore core(registry, opts);
  const auto images = make_images(32);

  const uint64_t n = static_cast<uint64_t>(rate * seconds);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(n);
  // Single scheduler thread, fixed arrival schedule t_i = i/rate.
  // infer_async never blocks, so the offered rate does not adapt to the
  // server's state — a true open loop.
  const auto start = Clock::now();
  for (uint64_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(
                    static_cast<int64_t>(static_cast<double>(i) * 1e6 /
                                         rate)));
    futures.push_back(core.infer_async(
        "m", images[static_cast<size_t>(i) % images.size()], 0,
        priority_of(i)));
  }

  OverloadPoint point;
  point.multiplier = multiplier;
  point.offered_qps = rate;
  point.sent = n;
  std::vector<uint64_t> ok_latencies;
  for (uint64_t i = 0; i < n; ++i) {
    const serve::Response r = futures[i].get();
    ClassCounts& cls = point.per[static_cast<size_t>(priority_of(i))];
    switch (r.status) {
      case serve::Status::kOk:
        ++cls.ok;
        ok_latencies.push_back(r.latency_us);
        break;
      case serve::Status::kShedded:
        ++cls.shed;
        break;
      case serve::Status::kRejected:
        ++cls.rejected;
        break;
      default:
        ++cls.errors;
        break;
    }
  }
  point.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  core.drain();
  for (const ClassCounts& cls : point.per) {
    point.total.ok += cls.ok;
    point.total.shed += cls.shed;
    point.total.rejected += cls.rejected;
    point.total.errors += cls.errors;
  }
  point.goodput_qps =
      point.seconds > 0
          ? static_cast<double>(point.total.ok) / point.seconds
          : 0.0;
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const auto pct = [&](double p) -> uint64_t {
    if (ok_latencies.empty()) return 0;
    return ok_latencies[static_cast<size_t>(
        p / 100.0 * static_cast<double>(ok_latencies.size() - 1))];
  };
  point.p50_us = pct(50);
  point.p99_us = pct(99);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double seconds = flags.get_double("seconds", 2.0);
  const int probe_requests = static_cast<int>(
      flags.get_int("probe-requests", 2000));
  const double max_rate = flags.get_double("max-rate", 50000.0);

  std::printf("probing capacity (%d closed-loop requests) ...\n",
              probe_requests);
  std::fflush(stdout);
  const double capacity = probe_capacity(probe_requests);
  std::printf("capacity ~%.0f QPS\n", capacity);

  std::vector<OverloadPoint> points;
  for (double multiplier : {1.0, 2.0, 4.0}) {
    const double rate = std::min(capacity * multiplier, max_rate);
    std::printf("offering %.1fx capacity (%.0f QPS) for %.1fs ...\n",
                multiplier, rate, seconds);
    std::fflush(stdout);
    points.push_back(run_point(multiplier, rate, seconds));
  }

  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_overload.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "overload: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"model\": \"lenet-mini\",\n"
               "  \"capacity_qps\": %.5g,\n  \"results\": [\n",
               capacity);
  for (size_t i = 0; i < points.size(); ++i) {
    const OverloadPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"multiplier\": %g, \"offered_qps\": %.5g, \"sent\": %llu, "
        "\"ok\": %llu, \"shed\": %llu, \"rejected\": %llu, "
        "\"errors\": %llu, \"goodput_qps\": %.5g, \"p50_us\": %llu, "
        "\"p99_us\": %llu,\n"
        "     \"per_class\": {"
        "\"interactive\": {\"ok\": %llu, \"shed\": %llu}, "
        "\"batch\": {\"ok\": %llu, \"shed\": %llu}, "
        "\"canary\": {\"ok\": %llu, \"shed\": %llu}}}%s\n",
        p.multiplier, p.offered_qps,
        static_cast<unsigned long long>(p.sent),
        static_cast<unsigned long long>(p.total.ok),
        static_cast<unsigned long long>(p.total.shed),
        static_cast<unsigned long long>(p.total.rejected),
        static_cast<unsigned long long>(p.total.errors), p.goodput_qps,
        static_cast<unsigned long long>(p.p50_us),
        static_cast<unsigned long long>(p.p99_us),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kInteractive)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kInteractive)]
                .shed),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kBatch)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kBatch)].shed),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kCanary)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kCanary)].shed),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\n== overload (lenet-mini, CoDel target 5ms) ==\n");
  std::printf("%5s %11s %8s %8s %8s %8s %11s %8s %8s\n", "mult",
              "offered", "sent", "ok", "shed", "rej", "goodput", "p50_us",
              "p99_us");
  for (const OverloadPoint& p : points) {
    std::printf("%5.1f %11.0f %8llu %8llu %8llu %8llu %11.0f %8llu "
                "%8llu\n",
                p.multiplier, p.offered_qps,
                static_cast<unsigned long long>(p.sent),
                static_cast<unsigned long long>(p.total.ok),
                static_cast<unsigned long long>(p.total.shed),
                static_cast<unsigned long long>(p.total.rejected),
                p.goodput_qps,
                static_cast<unsigned long long>(p.p50_us),
                static_cast<unsigned long long>(p.p99_us));
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
