// Overload behavior under open-loop offered load: probe the serving
// capacity of an in-process lenet-mini core, then offer 1x/2x/4x that
// rate on a fixed arrival schedule (no retries, no adaptation) with a
// 6:3:1 interactive:batch:canary priority mix and CoDel-style shedding
// enabled. Reports goodput, shed/reject counts, and completion-latency
// percentiles per multiplier — the shape to look for is goodput holding
// near capacity past 1x while batch (then canary) traffic absorbs the
// sheds and interactive p99 stays bounded. Writes BENCH_overload.json
// (override with QSNC_BENCH_OUT).
//
// A second section exercises the router front tier over a two-backend
// TCP fleet: a mid-run backend stop (reroute row: retries and drops —
// the drop count must be zero) and a chaos-slowed backend with hedging
// off vs on (tail-latency row). Both land under the "router" key of
// BENCH_overload.json.
//
// Flags: --seconds S (per point, default 2), --probe-requests N
//        (default 2000), --max-rate R (schedule cap, default 50000),
//        --router-requests N (reroute row, default 400),
//        --hedge-requests N (hedging row, default 40).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/rng.h"
#include "router/hash_ring.h"
#include "router/router_config.h"
#include "router/router_server.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/flags.h"

namespace {

using namespace qsnc;
using Clock = std::chrono::steady_clock;

serve::ModelConfig model_config() {
  serve::ModelConfig cfg;
  cfg.architecture = "lenet-mini";
  cfg.backend = serve::BackendKind::kFp32;
  cfg.init_seed = 9;
  return cfg;
}

std::vector<nn::Tensor> make_images(int n) {
  nn::Rng rng(77);
  std::vector<nn::Tensor> images;
  for (int i = 0; i < n; ++i) {
    nn::Tensor t({1, 28, 28});
    for (int64_t j = 0; j < t.numel(); ++j) {
      t[j] = rng.uniform(0.0f, 1.0f);
    }
    images.push_back(std::move(t));
  }
  return images;
}

/// Closed-loop capacity probe: hammer the core with a few producer
/// threads and read the sustained completion rate off the stats.
double probe_capacity(int requests) {
  serve::ModelRegistry registry;
  registry.add("m", model_config());
  serve::BatchOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 1024;
  serve::ServeCore core(registry, opts);
  const auto images = make_images(32);

  const int producers = 4;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = p; i < requests; i += producers) {
        (void)core.infer("m", images[static_cast<size_t>(i) %
                                     images.size()]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return seconds > 0 ? requests / seconds : 0.0;
}

struct ClassCounts {
  uint64_t ok = 0, shed = 0, rejected = 0, errors = 0;
};

struct OverloadPoint {
  double multiplier = 0.0;
  double offered_qps = 0.0;
  uint64_t sent = 0;
  ClassCounts per[serve::kNumPriorities];
  ClassCounts total;
  double seconds = 0.0;
  double goodput_qps = 0.0;
  uint64_t p50_us = 0, p99_us = 0;
};

serve::Priority priority_of(uint64_t i) {
  const uint64_t r = i % 10;  // 6:3:1 interactive:batch:canary
  if (r < 6) return serve::Priority::kInteractive;
  if (r < 9) return serve::Priority::kBatch;
  return serve::Priority::kCanary;
}

OverloadPoint run_point(double multiplier, double rate, double seconds) {
  serve::ModelRegistry registry;
  registry.add("m", model_config());
  serve::BatchOptions opts;
  opts.max_batch = 8;
  opts.batch_timeout_us = 200;
  opts.queue_capacity = 4096;
  opts.admission.delay_target_us = 5000;
  opts.admission.delay_window_us = 20000;
  serve::ServeCore core(registry, opts);
  const auto images = make_images(32);

  const uint64_t n = static_cast<uint64_t>(rate * seconds);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(n);
  // Single scheduler thread, fixed arrival schedule t_i = i/rate.
  // infer_async never blocks, so the offered rate does not adapt to the
  // server's state — a true open loop.
  const auto start = Clock::now();
  for (uint64_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(
                    static_cast<int64_t>(static_cast<double>(i) * 1e6 /
                                         rate)));
    futures.push_back(core.infer_async(
        "m", images[static_cast<size_t>(i) % images.size()], 0,
        priority_of(i)));
  }

  OverloadPoint point;
  point.multiplier = multiplier;
  point.offered_qps = rate;
  point.sent = n;
  std::vector<uint64_t> ok_latencies;
  for (uint64_t i = 0; i < n; ++i) {
    const serve::Response r = futures[i].get();
    ClassCounts& cls = point.per[static_cast<size_t>(priority_of(i))];
    switch (r.status) {
      case serve::Status::kOk:
        ++cls.ok;
        ok_latencies.push_back(r.latency_us);
        break;
      case serve::Status::kShedded:
        ++cls.shed;
        break;
      case serve::Status::kRejected:
        ++cls.rejected;
        break;
      default:
        ++cls.errors;
        break;
    }
  }
  point.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  core.drain();
  for (const ClassCounts& cls : point.per) {
    point.total.ok += cls.ok;
    point.total.shed += cls.shed;
    point.total.rejected += cls.rejected;
    point.total.errors += cls.errors;
  }
  point.goodput_qps =
      point.seconds > 0
          ? static_cast<double>(point.total.ok) / point.seconds
          : 0.0;
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const auto pct = [&](double p) -> uint64_t {
    if (ok_latencies.empty()) return 0;
    return ok_latencies[static_cast<size_t>(
        p / 100.0 * static_cast<double>(ok_latencies.size() - 1))];
  };
  point.p50_us = pct(50);
  point.p99_us = pct(99);
  return point;
}

// --- router fleet rows -----------------------------------------------------

/// One in-process backend serving node on an ephemeral TCP port.
struct FleetNode {
  serve::ModelRegistry registry;
  std::unique_ptr<serve::ServeCore> core;
  std::unique_ptr<serve::SocketServer> server;

  explicit FleetNode(serve::ChaosInjector* chaos = nullptr) {
    registry.add("m", model_config());
    serve::BatchOptions opts;
    opts.max_batch = 8;
    opts.batch_timeout_us = 200;
    opts.queue_capacity = 1024;
    opts.chaos = chaos;
    core = std::make_unique<serve::ServeCore>(registry, opts);
    server = std::make_unique<serve::SocketServer>(*core, "tcp:127.0.0.1:0");
  }
};

router::RouterOptions fleet_options(const FleetNode& a, const FleetNode& b) {
  router::RouterOptions options;
  options.backends = {a.server->endpoint(), b.server->endpoint()};
  options.listen = serve::parse_endpoint("tcp:127.0.0.1:0");
  options.probe_interval_ms = 50;
  options.probe_down_after = 2;
  return options;
}

/// A session key whose ring owner is backend index `want`.
std::string session_owned_by(const router::RouterOptions& options,
                             size_t want) {
  std::vector<std::string> labels;
  for (const auto& ep : options.backends) labels.push_back(ep.str());
  const router::HashRing ring(labels, options.vnodes);
  for (int i = 0;; ++i) {
    const std::string s = "s" + std::to_string(i);
    if (ring.pick(router::route_hash("m", s)) == want) return s;
  }
}

struct RerouteRow {
  uint64_t requests = 0;
  uint64_t retries = 0;
  uint64_t dropped = 0;  // must be zero: the router's core contract
  uint64_t rerouted = 0;
};

/// Closed-loop load through the router; one backend stops cold halfway.
RerouteRow run_router_reroute(uint64_t requests) {
  FleetNode a;
  FleetNode b;
  router::RouterServer router(fleet_options(a, b));
  serve::SocketClient client(router.endpoint());
  const auto images = make_images(32);

  RerouteRow row;
  row.requests = requests;
  for (uint64_t i = 0; i < requests; ++i) {
    if (i == requests / 2) b.server->stop();  // no drain visible to router
    bool ok = false;
    for (int attempt = 0; attempt < 20 && !ok; ++attempt) {
      if (attempt > 0) ++row.retries;
      const serve::Response r =
          client.infer("m", images[static_cast<size_t>(i) % images.size()]);
      ok = r.status == serve::Status::kOk;
    }
    if (!ok) ++row.dropped;
  }
  row.rerouted = router.router().rerouted();
  return row;
}

struct HedgeRow {
  uint64_t requests = 0;
  uint64_t p99_unhedged_us = 0;
  uint64_t p99_hedged_us = 0;
  uint64_t hedged = 0;
  uint64_t hedge_wins = 0;
};

/// Tail latency with every request pinned to a chaos-slowed backend,
/// hedging off vs on (the duplicate lands on the fast backend).
HedgeRow run_router_hedging(uint64_t requests) {
  serve::ChaosConfig chaos_cfg;
  chaos_cfg.backend_latency_rate = 1.0;
  chaos_cfg.backend_latency_us = 20'000;
  serve::ChaosInjector chaos(chaos_cfg);
  FleetNode slow(&chaos);
  FleetNode fast;
  const auto images = make_images(32);

  HedgeRow row;
  row.requests = requests;
  const auto run = [&](int64_t hedge_after_us) -> uint64_t {
    router::RouterOptions options = fleet_options(slow, fast);
    options.hedge_after_us = hedge_after_us;
    router::RouterServer router(options);
    const std::string session = session_owned_by(options, 0);
    serve::SocketClient client(router.endpoint());
    std::vector<uint64_t> latencies;
    for (uint64_t i = 0; i < requests; ++i) {
      const auto start = Clock::now();
      (void)client.infer("m",
                         images[static_cast<size_t>(i) % images.size()], 0,
                         serve::Priority::kInteractive, session);
      latencies.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - start)
              .count()));
    }
    if (hedge_after_us > 0) {
      row.hedged = router.router().hedged();
      row.hedge_wins = router.router().hedge_wins();
    }
    std::sort(latencies.begin(), latencies.end());
    return latencies[static_cast<size_t>(
        0.99 * static_cast<double>(latencies.size() - 1))];
  };
  row.p99_unhedged_us = run(0);
  row.p99_hedged_us = run(2'000);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double seconds = flags.get_double("seconds", 2.0);
  const int probe_requests = static_cast<int>(
      flags.get_int("probe-requests", 2000));
  const double max_rate = flags.get_double("max-rate", 50000.0);
  const uint64_t router_requests = static_cast<uint64_t>(
      flags.get_int("router-requests", 400));
  const uint64_t hedge_requests = static_cast<uint64_t>(
      flags.get_int("hedge-requests", 40));

  std::printf("probing capacity (%d closed-loop requests) ...\n",
              probe_requests);
  std::fflush(stdout);
  const double capacity = probe_capacity(probe_requests);
  std::printf("capacity ~%.0f QPS\n", capacity);

  std::vector<OverloadPoint> points;
  for (double multiplier : {1.0, 2.0, 4.0}) {
    const double rate = std::min(capacity * multiplier, max_rate);
    std::printf("offering %.1fx capacity (%.0f QPS) for %.1fs ...\n",
                multiplier, rate, seconds);
    std::fflush(stdout);
    points.push_back(run_point(multiplier, rate, seconds));
  }

  std::printf("router fleet: reroute row (%llu requests, one backend "
              "stopped mid-run) ...\n",
              static_cast<unsigned long long>(router_requests));
  std::fflush(stdout);
  const RerouteRow reroute = run_router_reroute(router_requests);
  std::printf("router fleet: hedging row (%llu pinned requests, one "
              "backend chaos-slowed 20ms) ...\n",
              static_cast<unsigned long long>(hedge_requests));
  std::fflush(stdout);
  const HedgeRow hedge = run_router_hedging(hedge_requests);

  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_overload.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "overload: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"model\": \"lenet-mini\",\n"
               "  \"capacity_qps\": %.5g,\n  \"results\": [\n",
               capacity);
  for (size_t i = 0; i < points.size(); ++i) {
    const OverloadPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"multiplier\": %g, \"offered_qps\": %.5g, \"sent\": %llu, "
        "\"ok\": %llu, \"shed\": %llu, \"rejected\": %llu, "
        "\"errors\": %llu, \"goodput_qps\": %.5g, \"p50_us\": %llu, "
        "\"p99_us\": %llu,\n"
        "     \"per_class\": {"
        "\"interactive\": {\"ok\": %llu, \"shed\": %llu}, "
        "\"batch\": {\"ok\": %llu, \"shed\": %llu}, "
        "\"canary\": {\"ok\": %llu, \"shed\": %llu}}}%s\n",
        p.multiplier, p.offered_qps,
        static_cast<unsigned long long>(p.sent),
        static_cast<unsigned long long>(p.total.ok),
        static_cast<unsigned long long>(p.total.shed),
        static_cast<unsigned long long>(p.total.rejected),
        static_cast<unsigned long long>(p.total.errors), p.goodput_qps,
        static_cast<unsigned long long>(p.p50_us),
        static_cast<unsigned long long>(p.p99_us),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kInteractive)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kInteractive)]
                .shed),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kBatch)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kBatch)].shed),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kCanary)].ok),
        static_cast<unsigned long long>(
            p.per[static_cast<size_t>(serve::Priority::kCanary)].shed),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"router\": {\n"
      "    \"reroute\": {\"requests\": %llu, \"retries\": %llu, "
      "\"dropped\": %llu, \"rerouted\": %llu},\n"
      "    \"hedging\": {\"requests\": %llu, \"p99_unhedged_us\": %llu, "
      "\"p99_hedged_us\": %llu, \"hedged\": %llu, \"hedge_wins\": %llu}\n"
      "  }\n}\n",
      static_cast<unsigned long long>(reroute.requests),
      static_cast<unsigned long long>(reroute.retries),
      static_cast<unsigned long long>(reroute.dropped),
      static_cast<unsigned long long>(reroute.rerouted),
      static_cast<unsigned long long>(hedge.requests),
      static_cast<unsigned long long>(hedge.p99_unhedged_us),
      static_cast<unsigned long long>(hedge.p99_hedged_us),
      static_cast<unsigned long long>(hedge.hedged),
      static_cast<unsigned long long>(hedge.hedge_wins));
  std::fclose(f);

  std::printf("\n== overload (lenet-mini, CoDel target 5ms) ==\n");
  std::printf("%5s %11s %8s %8s %8s %8s %11s %8s %8s\n", "mult",
              "offered", "sent", "ok", "shed", "rej", "goodput", "p50_us",
              "p99_us");
  for (const OverloadPoint& p : points) {
    std::printf("%5.1f %11.0f %8llu %8llu %8llu %8llu %11.0f %8llu "
                "%8llu\n",
                p.multiplier, p.offered_qps,
                static_cast<unsigned long long>(p.sent),
                static_cast<unsigned long long>(p.total.ok),
                static_cast<unsigned long long>(p.total.shed),
                static_cast<unsigned long long>(p.total.rejected),
                p.goodput_qps,
                static_cast<unsigned long long>(p.p50_us),
                static_cast<unsigned long long>(p.p99_us));
  }
  std::printf("\n== router fleet (2 TCP backends) ==\n");
  std::printf("reroute: %llu requests, %llu retries, %llu dropped, "
              "%llu rerouted%s\n",
              static_cast<unsigned long long>(reroute.requests),
              static_cast<unsigned long long>(reroute.retries),
              static_cast<unsigned long long>(reroute.dropped),
              static_cast<unsigned long long>(reroute.rerouted),
              reroute.dropped == 0 ? " (zero-drop contract held)" : "");
  std::printf("hedging: p99 %llu us -> %llu us (%llu hedges, %llu wins)\n",
              static_cast<unsigned long long>(hedge.p99_unhedged_us),
              static_cast<unsigned long long>(hedge.p99_hedged_us),
              static_cast<unsigned long long>(hedge.hedged),
              static_cast<unsigned long long>(hedge.hedge_wins));
  std::printf("wrote %s\n", path.c_str());
  return reroute.dropped == 0 ? 0 : 1;
}
