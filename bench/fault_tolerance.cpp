// Extension bench: cost and payoff of the closed-loop fault-tolerance
// layer.
//
// Three views of the same deployed LeNet:
//  1. Programming overhead — wall time and retry counts of write-verify
//     programming vs the open-loop baseline (the price of closing the
//     loop is paid once, at deployment).
//  2. Accuracy recovery — passive defect injection vs write-verify +
//     differential compensation + spare-column remapping across spare
//     budgets, at a fixed stuck-on rate.
//  3. Refresh overhead — the analytic duty cycle the retention-drift
//     refresh scheduler costs at several refresh intervals
//     (snc::evaluate_refresh against the Eq 1 cost model).
#include <chrono>

#include "bench_common.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/cost_model.h"
#include "snc/snc_system.h"

using namespace qsnc;

namespace {

double snc_accuracy(snc::SncSystem& sys, const data::InMemoryDataset& test,
                    int64_t n) {
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    if (sys.infer(s.image) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main() {
  std::printf("== Extension: fault-tolerance layer cost and payoff ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  core::TrainConfig cfg = bench::lenet_train_config();
  const int bits = 4;
  const int64_t n = bench::fast_mode() ? 40 : 100;

  nn::Rng rng(cfg.seed);
  nn::Network net = models::make_lenet(rng);
  core::NeuronConvergenceRegularizer reg(bits, 0.1f);
  core::train(net, *mnist.train, cfg, &reg, bits, cfg.epochs - 2);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = cfg.input_scale;
  base.device.stuck_on_rate = 0.02;

  // 1. Programming overhead.
  {
    report::Table t({"programming mode", "time ms", "retries", "detected",
                     "compensated", "residual"});
    struct Mode {
      const char* name;
      bool verify;
      int64_t spares;
    };
    const Mode modes[] = {
        {"open-loop (passive)", false, 0},
        {"write-verify", true, 0},
        {"write-verify + 2 spares", true, 2},
    };
    for (const Mode& m : modes) {
      snc::SncConfig scfg = base;
      scfg.recovery.write_verify = m.verify;
      scfg.recovery.spare_cols = m.spares;
      const auto t0 = std::chrono::steady_clock::now();
      snc::SncSystem sys(net, {1, 28, 28}, scfg);
      const double ms = seconds_since(t0) * 1e3;
      const snc::FaultReport fr = sys.fault_report();
      t.add_row({m.name, report::fmt(ms, 1),
                 std::to_string(fr.write_retries),
                 std::to_string(fr.faults_detected),
                 std::to_string(fr.faults_compensated),
                 std::to_string(fr.residual_faults)});
    }
    std::printf("programming (stuck-on 2%%):\n%s", t.to_string().c_str());
  }

  // 2. Accuracy recovery across spare budgets.
  {
    snc::SncConfig clean = base;
    clean.device.stuck_on_rate = 0.0;
    snc::SncSystem clean_sys(net, {1, 28, 28}, clean);
    const double fault_free = snc_accuracy(clean_sys, *mnist.test, n);

    report::Table t({"config", "accuracy", "drop vs fault-free pp"});
    t.add_row({"fault-free", report::pct(fault_free), "0.0"});
    struct Case {
      const char* name;
      bool verify;
      int64_t spares;
    };
    const Case cases[] = {
        {"passive @ stuck-on 2%", false, 0},
        {"recovered, 0 spares", true, 0},
        {"recovered, 2 spares", true, 2},
        {"recovered, 4 spares", true, 4},
    };
    for (const Case& c : cases) {
      snc::SncConfig scfg = base;
      scfg.recovery.write_verify = c.verify;
      scfg.recovery.spare_cols = c.spares;
      double acc = 0.0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        scfg.seed = 7 + static_cast<uint64_t>(s);
        snc::SncSystem sys(net, {1, 28, 28}, scfg);
        acc += snc_accuracy(sys, *mnist.test, n);
      }
      acc /= seeds;
      t.add_row({c.name, report::pct(acc),
                 report::fmt((fault_free - acc) * 100.0, 1)});
    }
    std::printf("accuracy (3-seed mean):\n%s", t.to_string().c_str());
  }

  // 3. Refresh duty cycle from the analytic models.
  {
    const snc::ModelMapping mapping =
        snc::map_network(net, "lenet", {1, 28, 28}, 32);
    report::Table t({"refresh every (windows)", "duty", "effective MHz"});
    for (double interval : {1e4, 1e5, 1e6}) {
      const snc::RefreshOverhead ro =
          snc::evaluate_refresh(mapping, bits, bits, interval);
      t.add_row({report::fmt(interval, 0), report::pct(ro.duty, 3),
                 report::fmt(ro.effective_speed_mhz, 2)});
    }
    std::printf("retention refresh overhead:\n%s", t.to_string().c_str());
  }
  return 0;
}
