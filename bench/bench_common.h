// Shared workload and configuration for the table/figure bench binaries.
//
// Real-data hook: when QSNC_MNIST_DIR / QSNC_CIFAR_DIR point at directories
// containing the original datasets (IDX / binary batches), the benches run
// on them; otherwise they fall back to the synthetic generators (see
// DESIGN.md for the substitution rationale).
//
// QSNC_BENCH_FAST=1 shrinks every workload (~4x fewer images, fewer
// epochs) for smoke runs; reported numbers then carry more seed noise.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/qat_pipeline.h"
#include "data/idx_loader.h"
#include "data/synthetic_cifar.h"
#include "data/synthetic_mnist.h"
#include "report/table.h"

namespace qsnc::bench {

inline bool fast_mode() {
  const char* v = std::getenv("QSNC_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

struct Workload {
  data::DatasetPtr train;
  data::DatasetPtr test;
};

inline Workload mnist_workload() {
  if (const char* dir = std::getenv("QSNC_MNIST_DIR")) {
    auto train = data::try_load_mnist(dir, true);
    auto test = data::try_load_mnist(dir, false);
    if (train && test) {
      std::printf("[data] real MNIST from %s\n", dir);
      return {*train, *test};
    }
  }
  data::SyntheticMnistConfig tc;
  tc.num_samples = fast_mode() ? 400 : 1200;
  tc.seed = 1;
  data::SyntheticMnistConfig ec = tc;
  ec.num_samples = fast_mode() ? 150 : 400;
  ec.seed = 999;
  return {data::make_synthetic_mnist(tc), data::make_synthetic_mnist(ec)};
}

inline Workload cifar_workload() {
  if (const char* dir = std::getenv("QSNC_CIFAR_DIR")) {
    auto train = data::try_load_cifar10(dir, true);
    auto test = data::try_load_cifar10(dir, false);
    if (train && test) {
      std::printf("[data] real CIFAR-10 from %s\n", dir);
      return {*train, *test};
    }
  }
  data::SyntheticCifarConfig tc;
  tc.num_samples = fast_mode() ? 300 : 1000;
  tc.seed = 1;
  data::SyntheticCifarConfig ec = tc;
  ec.num_samples = fast_mode() ? 120 : 300;
  ec.seed = 999;
  return {data::make_synthetic_cifar(tc), data::make_synthetic_cifar(ec)};
}

inline core::TrainConfig lenet_train_config() {
  core::TrainConfig cfg;
  cfg.epochs = fast_mode() ? 6 : 14;
  cfg.lr = 5e-4f;
  return cfg;
}

inline core::TrainConfig alexnet_train_config() {
  core::TrainConfig cfg;
  cfg.epochs = fast_mode() ? 5 : 14;
  cfg.lr = 1e-3f;
  return cfg;
}

inline core::TrainConfig resnet_train_config() {
  core::TrainConfig cfg;
  cfg.epochs = fast_mode() ? 4 : 10;
  cfg.lr = 1e-2f;
  return cfg;
}

/// Prints one experiment block in the paper's Table 2/3/4 layout.
inline void print_experiment(const core::ExperimentResult& r,
                             const char* paper_row_note) {
  std::printf("\n%s on %s  (ideal fp32: %s", r.model.c_str(),
              r.dataset.c_str(), report::pct(r.ideal_acc).c_str());
  if (r.dfp8_acc > 0.0) {
    std::printf(", 8-bit dynamic fixed point [23]: %s",
                report::pct(r.dfp8_acc).c_str());
  }
  std::printf(")\n");

  report::Table t({"bits", "w/o (direct)", "w/ (proposed)", "Recovered Acc.",
                   "Acc. Drop"});
  for (size_t i = 0; i < r.rows.size(); ++i) {
    t.add_row({std::to_string(r.rows[i].bits) + "-bit",
               report::pct(r.rows[i].acc_without),
               report::pct(r.rows[i].acc_with),
               report::fmt(r.recovered_pp(i), 2) + " pp",
               report::fmt(-r.drop_pp(i), 2) + " pp"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("paper: %s\n", paper_row_note);
}

}  // namespace qsnc::bench
