// SNC inference engine benchmark: event-driven vs dense-reference
// execution of the spiking simulator on the model zoo.
//
// For each model (lenet / alexnet / resnet minis) and each integration
// mode (ideal, online) the same images run through two identically
// programmed SncSystems that differ only in SncConfig::engine. The bench
// verifies the predictions match bit-for-bit, then reports images/sec for
// both engines plus the activity counters that explain the gap: per-image
// input events vs dense row drives (the O(nnz) work reduction, immune to
// timer noise) and — in online mode — the fraction of window slots that
// actually carried spikes, fed into the discrete-event timing simulator
// to estimate what an event-driven slot sequencer buys in hardware.
//
// A second sweep measures the batch-native engine: the same images run
// through SncSystem::infer_batch at B in {1, 2, 4, 8, 16} on both
// engines, verifying predictions stay bit-identical to the per-image
// loop at every B and reporting images/sec plus panel bytes streamed per
// image (the union row pass amortizes each stage's conductance panel
// across the batch, so bytes/image falls as B grows).
//
// Writes BENCH_snc.json (override with QSNC_BENCH_OUT).
// Flags: --images N (ideal-mode images per model, default 8)
//        --online-images N (online-mode images per model, default 2)
//        --models csv (default lenet,alexnet,resnet)
//        --batch-sizes csv (default 1,2,4,8,16; empty disables the sweep)
//        --batch-images N (ideal-mode sweep images per B, default 16)
//        --batch-online-images N (online-mode sweep images, default 4)
//        --threads N (default 1: single-thread timing)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bn_folding.h"
#include "core/fixed_point.h"
#include "core/weight_clustering.h"
#include "models/model_zoo.h"
#include "snc/snc_system.h"
#include "snc/timing_sim.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace qsnc;

namespace {

struct ModelCase {
  std::string name;
  nn::Network net;
  nn::Shape input;
  data::DatasetPtr images;
};

struct EngineRun {
  double seconds = 0.0;
  double images_per_sec = 0.0;
  std::vector<int64_t> predictions;
  snc::SncStats totals;  // stage entries summed over images
  int64_t images = 0;
};

struct ModeResult {
  std::string model;
  std::string mode;
  int64_t images = 0;
  EngineRun event;
  EngineRun dense;
  double speedup = 0.0;
  bool predictions_match = false;
  double input_sparsity = 0.0;
  double events_per_image = 0.0;
  double dense_drives_per_image = 0.0;
  double spikes_per_image = 0.0;
  double occupied_slot_fraction = 0.0;  // online mode only
  double timing_speedup = 0.0;          // online mode only
};

EngineRun run_engine(nn::Network& net, const ModelCase& model,
                     const snc::SncConfig& cfg, int64_t images) {
  snc::SncSystem system(net, model.input, cfg);
  EngineRun run;
  run.images = images;
  snc::SncStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < images; ++i) {
    const data::Sample s = model.images->get(i);
    run.predictions.push_back(system.infer(s.image, &stats));
    if (run.totals.stage.size() < stats.stage.size()) {
      run.totals.stage.resize(stats.stage.size());
    }
    run.totals.total_spikes += stats.total_spikes;
    run.totals.window_slots = stats.window_slots;
    for (size_t st = 0; st < stats.stage.size(); ++st) {
      run.totals.stage[st].rows = stats.stage[st].rows;
      run.totals.stage[st].cols = stats.stage[st].cols;
      run.totals.stage[st].positions += stats.stage[st].positions;
      run.totals.stage[st].input_events += stats.stage[st].input_events;
      run.totals.stage[st].spikes += stats.stage[st].spikes;
      run.totals.stage[st].occupied_slots += stats.stage[st].occupied_slots;
    }
  }
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.images_per_sec =
      run.seconds > 0.0 ? static_cast<double>(images) / run.seconds : 0.0;
  return run;
}

// One point of the batch-native sweep: model x mode x engine x B.
struct BatchPoint {
  std::string model;
  std::string mode;
  std::string engine;
  int64_t batch = 0;
  int64_t images = 0;
  double images_per_sec = 0.0;
  double panel_bytes_per_image = 0.0;
  bool predictions_match = false;  // vs per-image infer() on this engine
};

std::vector<int64_t> parse_int_list(const std::string& csv) {
  std::vector<int64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t end = csv.find(',', pos);
    if (end == std::string::npos) end = csv.size();
    if (end > pos) out.push_back(std::stoll(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

// Runs the batch-native sweep for one (model, mode, engine): a per-image
// reference pass pins the expected predictions, then each batch size re-
// runs the same images through infer_batch on a freshly programmed system
// (construction is outside the timer; batch tensors are pre-assembled).
void run_batch_sweep(const ModelCase& model, nn::Network& net,
                     snc::SncConfig cfg, snc::IntegrationMode mode,
                     const std::vector<int64_t>& sizes, int64_t images,
                     std::vector<BatchPoint>& out) {
  cfg.mode = mode;
  const bool online = mode == snc::IntegrationMode::kOnline;
  const int64_t chw = nn::shape_numel(model.input);

  for (const bool dense : {false, true}) {
    cfg.engine = dense ? snc::SncEngine::kDenseReference
                       : snc::SncEngine::kEventDriven;
    std::vector<int64_t> reference;
    {
      snc::SncSystem system(net, model.input, cfg);
      for (int64_t i = 0; i < images; ++i) {
        reference.push_back(system.infer(model.images->get(i).image));
      }
    }
    for (const int64_t batch_size : sizes) {
      if (batch_size < 1 || batch_size > images) continue;
      std::vector<nn::Tensor> batches;
      for (int64_t start = 0; start < images; start += batch_size) {
        const int64_t b = std::min(batch_size, images - start);
        nn::Tensor t({b, model.input[0], model.input[1], model.input[2]});
        for (int64_t j = 0; j < b; ++j) {
          const data::Sample s = model.images->get(start + j);
          std::copy(s.image.data(), s.image.data() + chw,
                    t.data() + j * chw);
        }
        batches.push_back(std::move(t));
      }

      snc::SncSystem system(net, model.input, cfg);
      const int64_t bytes0 = system.panel_bytes_streamed();
      std::vector<int64_t> preds;
      const auto t0 = std::chrono::steady_clock::now();
      for (const nn::Tensor& t : batches) {
        const std::vector<int64_t> p = system.infer_batch(t);
        preds.insert(preds.end(), p.begin(), p.end());
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();

      BatchPoint point;
      point.model = model.name;
      point.mode = online ? "online" : "ideal";
      point.engine = dense ? "dense" : "event";
      point.batch = batch_size;
      point.images = images;
      point.images_per_sec =
          seconds > 0.0 ? static_cast<double>(images) / seconds : 0.0;
      point.panel_bytes_per_image =
          static_cast<double>(system.panel_bytes_streamed() - bytes0) /
          static_cast<double>(images);
      point.predictions_match = preds == reference;
      out.push_back(point);
    }
  }
}

ModeResult run_mode(const ModelCase& model, nn::Network& net,
                    snc::SncConfig cfg, snc::IntegrationMode mode,
                    int64_t images) {
  cfg.mode = mode;
  const bool online = mode == snc::IntegrationMode::kOnline;

  ModeResult result;
  result.model = model.name;
  result.mode = online ? "online" : "ideal";
  result.images = images;

  cfg.engine = snc::SncEngine::kEventDriven;
  result.event = run_engine(net, model, cfg, images);
  cfg.engine = snc::SncEngine::kDenseReference;
  result.dense = run_engine(net, model, cfg, images);

  result.predictions_match =
      result.event.predictions == result.dense.predictions;
  result.speedup = result.event.images_per_sec > 0.0 &&
                           result.dense.images_per_sec > 0.0
                       ? result.event.images_per_sec /
                             result.dense.images_per_sec
                       : 0.0;
  const double inv = 1.0 / static_cast<double>(images);
  result.input_sparsity = result.event.totals.input_sparsity();
  result.events_per_image =
      static_cast<double>(result.event.totals.input_events()) * inv;
  result.dense_drives_per_image =
      static_cast<double>(result.event.totals.dense_row_drives()) * inv;
  result.spikes_per_image =
      static_cast<double>(result.event.totals.total_spikes) * inv;

  if (online) {
    // Slot occupancy over every (stage, position) window, feeding the
    // timing simulator: an event-driven sequencer only issues slots that
    // carry at least one spike.
    const int64_t T = result.event.totals.window_slots;
    int64_t occupied = 0;
    int64_t windows = 0;
    for (const snc::SncStageStats& st : result.event.totals.stage) {
      occupied += st.occupied_slots;
      windows += st.positions;
    }
    result.occupied_slot_fraction =
        windows > 0 ? static_cast<double>(occupied) /
                          static_cast<double>(windows * T)
                    : 0.0;
    const int64_t layers =
        static_cast<int64_t>(result.event.totals.stage.size());
    const int64_t active = static_cast<int64_t>(
        result.occupied_slot_fraction * static_cast<double>(T) + 0.999);
    const snc::TimingResult dense_t = snc::simulate_window(layers, T);
    const snc::TimingResult event_t =
        snc::simulate_window(layers, T, {}, active);
    result.timing_speedup = dense_t.period_ns / event_t.period_ns;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t ideal_images = flags.get_int("images", 8);
  const int64_t online_images = flags.get_int("online-images", 2);
  const std::vector<int64_t> batch_sizes =
      parse_int_list(flags.get("batch-sizes", "1,2,4,8,16"));
  const int64_t batch_images = flags.get_int("batch-images", 16);
  const int64_t batch_online_images =
      flags.get_int("batch-online-images", 4);
  const std::string models_csv = flags.get("models", "lenet,alexnet,resnet");
  const int threads = static_cast<int>(flags.get_int("threads", 1));
  util::set_num_threads(threads);

  const int bits = 4;
  std::vector<ModelCase> models;
  {
    const bench::Workload mnist = bench::mnist_workload();
    const bench::Workload cifar = bench::cifar_workload();
    if (models_csv.find("lenet") != std::string::npos) {
      nn::Rng rng(9);
      models.push_back(
          {"lenet", models::make_lenet_mini(rng), {1, 28, 28}, mnist.test});
    }
    if (models_csv.find("alexnet") != std::string::npos) {
      nn::Rng rng(9);
      models.push_back({"alexnet", models::make_alexnet_mini(rng),
                        {3, 32, 32}, cifar.test});
    }
    if (models_csv.find("resnet") != std::string::npos) {
      nn::Rng rng(9);
      models.push_back({"resnet", models::make_resnet_mini(rng),
                        {3, 32, 32}, cifar.test});
    }
  }

  std::vector<ModeResult> results;
  std::vector<BatchPoint> batch_points;
  bool all_match = true;
  for (ModelCase& model : models) {
    core::fold_batchnorm(model.net);
    core::WeightClusterConfig wc;
    wc.bits = bits;
    const auto wcr = core::apply_weight_clustering(model.net, wc);

    snc::SncConfig cfg;
    cfg.signal_bits = bits;
    cfg.weight_bits = bits;
    cfg.weight_scales.clear();
    for (const auto& r : wcr) cfg.weight_scales.push_back(r.scale);
    cfg.input_scale = std::min(
        16.0f, static_cast<float>(core::signal_max(bits)));

    for (snc::IntegrationMode mode :
         {snc::IntegrationMode::kIdealIntegration,
          snc::IntegrationMode::kOnline}) {
      const bool online = mode == snc::IntegrationMode::kOnline;
      const int64_t n = online ? online_images : ideal_images;
      std::printf("running %-8s %-6s x%lld ...\n", model.name.c_str(),
                  online ? "online" : "ideal", static_cast<long long>(n));
      std::fflush(stdout);
      results.push_back(run_mode(model, model.net, cfg, mode, n));
      if (!results.back().predictions_match) all_match = false;

      if (!batch_sizes.empty()) {
        const int64_t sweep_images =
            online ? batch_online_images : batch_images;
        std::printf("running %-8s %-6s batch sweep x%lld ...\n",
                    model.name.c_str(), online ? "online" : "ideal",
                    static_cast<long long>(sweep_images));
        std::fflush(stdout);
        run_batch_sweep(model, model.net, cfg, mode, batch_sizes,
                        sweep_images, batch_points);
      }
    }
  }
  for (const BatchPoint& p : batch_points) {
    if (!p.predictions_match) all_match = false;
  }

  const char* env = std::getenv("QSNC_BENCH_OUT");
  const std::string path = env ? env : "BENCH_snc.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "snc_inference: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"threads\": %d,\n  \"results\": [\n", threads);
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"mode\": \"%s\", \"images\": %lld, "
        "\"images_per_sec_event\": %.5g, \"images_per_sec_dense\": %.5g, "
        "\"speedup_vs_dense\": %.4g, \"predictions_match\": %s, "
        "\"input_sparsity\": %.4f, \"events_per_image\": %.1f, "
        "\"dense_row_drives_per_image\": %.1f, \"spikes_per_image\": %.1f, "
        "\"occupied_slot_fraction\": %.4f, \"timing_speedup\": %.4g}%s\n",
        r.model.c_str(), r.mode.c_str(), static_cast<long long>(r.images),
        r.event.images_per_sec, r.dense.images_per_sec, r.speedup,
        r.predictions_match ? "true" : "false", r.input_sparsity,
        r.events_per_image, r.dense_drives_per_image, r.spikes_per_image,
        r.occupied_slot_fraction, r.timing_speedup,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"batch_sweep\": [\n");
  for (size_t i = 0; i < batch_points.size(); ++i) {
    const BatchPoint& p = batch_points[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"mode\": \"%s\", \"engine\": \"%s\", "
        "\"batch\": %lld, \"images\": %lld, \"images_per_sec\": %.5g, "
        "\"panel_bytes_per_image\": %.5g, \"predictions_match\": %s}%s\n",
        p.model.c_str(), p.mode.c_str(), p.engine.c_str(),
        static_cast<long long>(p.batch), static_cast<long long>(p.images),
        p.images_per_sec, p.panel_bytes_per_image,
        p.predictions_match ? "true" : "false",
        i + 1 < batch_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\n== SNC inference: event-driven vs dense (threads=%d) ==\n",
              threads);
  std::printf("%-8s %-6s %6s %10s %10s %8s %9s %7s %10s\n", "model", "mode",
              "images", "ev img/s", "dn img/s", "speedup", "sparsity",
              "match", "slot-occ");
  for (const ModeResult& r : results) {
    std::printf("%-8s %-6s %6lld %10.2f %10.2f %7.2fx %8.1f%% %7s %9.1f%%\n",
                r.model.c_str(), r.mode.c_str(),
                static_cast<long long>(r.images), r.event.images_per_sec,
                r.dense.images_per_sec, r.speedup,
                100.0 * r.input_sparsity,
                r.predictions_match ? "yes" : "NO",
                100.0 * r.occupied_slot_fraction);
  }
  if (!batch_points.empty()) {
    std::printf("\n== batch-native sweep (panel bytes amortized over the "
                "batch) ==\n");
    std::printf("%-8s %-6s %-6s %6s %10s %14s %7s\n", "model", "mode",
                "engine", "batch", "img/s", "panel MB/img", "match");
    for (const BatchPoint& p : batch_points) {
      std::printf("%-8s %-6s %-6s %6lld %10.2f %14.3f %7s\n",
                  p.model.c_str(), p.mode.c_str(), p.engine.c_str(),
                  static_cast<long long>(p.batch), p.images_per_sec,
                  p.panel_bytes_per_image / (1024.0 * 1024.0),
                  p.predictions_match ? "yes" : "NO");
    }
  }
  std::printf("wrote %s\n", path.c_str());
  if (!all_match) {
    std::fprintf(stderr,
                 "snc_inference: engines disagree on predictions!\n");
    return 1;
  }
  return 0;
}
