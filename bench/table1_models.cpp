// Reproduces paper Table 1: the model zoo and its ideal (fp32) accuracy.
//
// The structural columns (input size, conv/FC layer counts, weight counts)
// come from the full-spec builders; the ideal accuracy is measured by
// training the 1-core variants (LeNet is full-spec; AlexNet/ResNet use the
// mini widths — see DESIGN.md).
#include "bench_common.h"
#include "core/metrics.h"
#include "models/model_zoo.h"

using namespace qsnc;

namespace {

std::string shape_str(const nn::Shape& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(s[i]);
  }
  return out;
}

double train_ideal(nn::Network (*factory)(nn::Rng&),
                   const core::TrainConfig& cfg,
                   const bench::Workload& work) {
  nn::Rng rng(cfg.seed);
  nn::Network net = factory(rng);
  core::train(net, *work.train, cfg);
  return core::evaluate_accuracy(net, *work.test, cfg.input_scale);
}

}  // namespace

int main() {
  std::printf("== Table 1: Neural network models and ideal accuracy ==\n");
  const bench::Workload mnist = bench::mnist_workload();
  const bench::Workload cifar = bench::cifar_workload();

  struct Row {
    models::ModelSpec spec;
    nn::Network (*full)(nn::Rng&);
    nn::Network (*mini)(nn::Rng&);
    core::TrainConfig cfg;
    const bench::Workload* work;
    const char* paper_weights;
    const char* paper_acc;
  };
  const Row rows[] = {
      {models::lenet_spec(), models::make_lenet, models::make_lenet_mini,
       bench::lenet_train_config(), &mnist, "7e3", "98.16%"},
      {models::alexnet_spec(), models::make_alexnet,
       models::make_alexnet_mini, bench::alexnet_train_config(), &cifar,
       "3.4e5", "85.35%"},
      {models::resnet_spec(), models::make_resnet, models::make_resnet_mini,
       bench::resnet_train_config(), &cifar, "1.2e7", "93.05%"},
  };

  report::Table t({"Model", "Dataset", "Input Size", "Conv Layers",
                   "FC Layers", "Weights (full)", "paper", "Ideal Acc.",
                   "paper"});
  for (const Row& row : rows) {
    nn::Rng rng(1);
    nn::Network full = row.full(rng);
    const double acc = train_ideal(row.mini, row.cfg, *row.work);
    char weights[32];
    std::snprintf(weights, sizeof(weights), "%.2g",
                  static_cast<double>(full.num_weights()));
    t.add_row({row.spec.name, row.spec.dataset,
               shape_str(row.spec.input_shape),
               std::to_string(row.spec.conv_layers),
               std::to_string(row.spec.fc_layers), weights,
               row.paper_weights, report::pct(acc), row.paper_acc});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("note: accuracy measured on the 1-core training variants and "
              "the offline dataset (synthetic unless QSNC_*_DIR is set).\n");
  return 0;
}
