// qsnc — command-line front end to the library.
//
//   qsnc train  --model lenet|alexnet|resnet [--nc --bits M] [--epochs N]
//               [--lr X] [--train-size N] [--out state.bin]
//   qsnc quantize --model M --state in.bin --bits N [--out out.bin]
//               (Weight Clustering onto the N-bit grid)
//   qsnc eval   --model M --state state.bin [--bits M] [--test-size N]
//   qsnc deploy --model M --state state.bin --bits M [--images N]
//               [--batch B] [--stuck-on R] [--stuck-off R] [--variation S]
//               [--write-verify] [--spare-cols K] [--snc-seed S]
//               (spike-level SNC inference; weights must be on the grid;
//               fault flags inject defects and enable closed-loop recovery;
//               --batch B runs the batch-native engine B images at a time,
//               bit-identical to --batch 1)
//   qsnc faultsim --model M [--state f] [--bits M] [--images N] [--batch B]
//               [--rates csv] [--spares csv] [--seeds K]
//               (stuck-on rate x spare budget sweep: passive vs recovered
//               accuracy; trains a small model when --state is omitted)
//   qsnc cost   --model M [--signal-bits M] [--weight-bits N] [--crossbar t]
//   qsnc serve  --model lenet-mini[@v1] [--backend fp32|quant|snc]
//               [--state f]
//               [--bits M] [--shards N] [--max-batch B]
//               [--batch-timeout-us T] [--queue-cap Q]
//               [--listen unix:/tmp/qsnc-serve.sock|tcp:host:port]
//               (--socket path is the historical alias for --listen)
//               [--snc-replicas R] [--snc-batch-native on|off]
//               [--snc-stuck-on R] [--snc-stuck-off R]
//               [--snc-variation S] [--snc-write-verify] [--snc-spare-cols K]
//               [--health] [--health-interval B] [--health-canaries N]
//               [--health-min-fraction F] [--health-reprogram A]
//               [--health-per-replica-seeds]
//               [--max-concurrency C] [--delay-target-us T]
//               [--delay-window-us W] [--breaker-threshold K]
//               [--breaker-open-ms T]
//               [--read-timeout-ms T] [--write-timeout-ms T]
//               [--idle-timeout-ms T] [--max-connections C]
//               [--journal path.jrnl]
//               (--journal appends every state transition — version
//               loads, promotes, rollbacks, replica quarantines — to a
//               CRC-protected append-only journal, and replays it on
//               startup so a restarted node reconciles to its pre-crash
//               active versions; torn tails are detected and dropped)
//               [--chaos-profile none|torn|backend|queue|soak]
//               [--chaos-seed S]
//               (long-lived inference server; SIGINT drains and exits;
//               --health enables canary checks + quarantine + quant
//               fallback; --delay-target-us enables CoDel-style overload
//               shedding, --breaker-threshold the per-backend circuit
//               breaker; --chaos-profile injects deterministic seeded
//               faults for resilience testing, reported at shutdown;
//               --shards N runs N identical batcher+backend lanes;
//               --snc-batch-native off restores the per-image replica
//               fan-out for the snc backend — deployments with
//               --health-per-replica-seeds always fan out, since fault
//               diversity needs images spread across replica seeds)
//               [--shadow-fraction F] [--rollout-observe N]
//               [--max-divergence R] [--rollout-canary-rounds K]
//               [--rollout-canaries N] [--rollout-canary-interval-ms T]
//               [--rollout-manual]
//               (blue/green rollout tuning for hot-loaded versions:
//               shadow F of live traffic, auto-promote after N agreeing
//               comparisons + K clean canary rounds, auto-rollback past
//               divergence R; --rollout-manual observes only and waits
//               for qsnc rollout promote/rollback)
//   qsnc rollout <load|promote|rollback|status> [--connect endpoint]
//               load: --model base@version [--state ckpt.bin]
//                     [--arch A] [--backend fp32|quant|snc] [--bits M]
//                     [--seed S]
//               promote|rollback: [--model name] [--reason text]
//               status: [--model name]
//               (model-lifecycle control of a running qsnc serve: load
//               hot-registers a CRC-checked checkpoint over the socket —
//               no restart — and starts a blue/green shadow rollout
//               against the active version; promote/rollback override
//               the controller's auto decision; exit 0 on ok, 1 with the
//               server's structured reason on refusal)
//   qsnc router --backends ep1,ep2,... [--listen tcp:host:port]
//               [--vnodes V] [--probe-interval-ms T] [--probe-timeout-ms T]
//               [--probe-down-after K] [--forward-timeout-ms T]
//               [--hedge-after-us T] [--breaker-threshold K]
//               [--breaker-open-ms T] [--read-timeout-ms T]
//               [--write-timeout-ms T] [--idle-timeout-ms T]
//               [--max-connections C]
//               [--retry-tokens-per-sec R] [--retry-burst B]
//               (front tier over a fleet of qsnc serve processes:
//               consistent-hash routing on (model, session), health
//               probing, automatic reroute around dead backends, and
//               optional hedged requests for interactive traffic;
//               requests with --deadline-us budgets have the router's
//               elapsed time decremented before forwarding, so hops
//               never stack full budgets; --retry-tokens-per-sec caps
//               how fast reroutes may spend each backend's retry budget
//               — a dry budget sheds instead of amplifying)
//   qsnc supervisor [run] --spec lanes.spec [--listen tcp:host:port]
//               [--quarantine-exits K] [--quarantine-window-ms T]
//               [--healthy-reset-ms T] [--restart-base-ms T]
//               [--restart-max-ms T] [--drain-timeout-ms T]
//   qsnc supervisor status  --connect endpoint
//   qsnc supervisor release --connect endpoint --lane name
//               (process supervisor: spawns the lanes of a spec file —
//               "lane <name> = <argv...>" per line — restarts crashed
//               ones on an exponential-jitter schedule, quarantines
//               crash loops of K exits within the window, and drains
//               children SIGTERM-then-SIGKILL on shutdown; --listen
//               serves the v6 control endpoint the status/release verbs
//               talk to)
//   qsnc loadgen --model lenet-mini[@v2] [--connect endpoint]
//               [--requests N]
//               [--concurrency C] [--no-retry] [--deadline-us D]
//               [--priority interactive|canary|batch|mix]
//               [--sessions K] [--open-loop --rate R]
//               (--socket path is the historical alias for --connect;
//               --sessions K tags request i with session key i%K so a
//               router pins each session to one backend)
//               (load generator against a running server; closed-loop by
//               default with rejected/shedded requests retrying under
//               jittered exponential backoff honoring server hints;
//               --open-loop sends on a fixed deterministic schedule of R
//               requests/s with no retries, the overload-probing mode)
//
// Every command accepts --threads N to size the thread pool (overrides the
// QSNC_THREADS environment variable; default: hardware concurrency).
// Unknown flags are a hard error (exit 2) so a typo like --max-bacth can
// never silently configure a load test.
//
// Models train/evaluate on the built-in synthetic datasets (set
// QSNC_MNIST_DIR / QSNC_CIFAR_DIR for the real ones, as in the benches).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fixed_point.h"
#include "core/metrics.h"
#include "core/neuron_convergence.h"
#include "core/qat_pipeline.h"
#include "core/weight_clustering.h"
#include "data/idx_loader.h"
#include "data/synthetic_cifar.h"
#include "data/synthetic_mnist.h"
#include "models/model_zoo.h"
#include "nn/serialize.h"
#include "report/table.h"
#include "router/router_config.h"
#include "router/router_server.h"
#include "serve/backoff.h"
#include "serve/chaos.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "snc/cost_model.h"
#include "snc/snc_system.h"
#include "supervise/spec.h"
#include "supervise/supervisor.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace qsnc;

namespace {

struct ModelChoice {
  std::string name;
  nn::Network (*factory)(nn::Rng&);
  nn::Network (*full_factory)(nn::Rng&);
  bool is_mnist;
  nn::Shape input;
};

ModelChoice resolve_model(const std::string& name) {
  if (name == "lenet") {
    return {name, models::make_lenet, models::make_lenet, true, {1, 28, 28}};
  }
  if (name == "alexnet") {
    return {name, models::make_alexnet_mini, models::make_alexnet, false,
            {3, 32, 32}};
  }
  if (name == "resnet") {
    return {name, models::make_resnet_mini, models::make_resnet, false,
            {3, 32, 32}};
  }
  throw std::invalid_argument("unknown --model '" + name +
                              "' (lenet|alexnet|resnet)");
}

data::DatasetPtr load_dataset(const ModelChoice& model, int64_t size,
                              uint64_t seed, bool train) {
  if (model.is_mnist) {
    if (const char* dir = std::getenv("QSNC_MNIST_DIR")) {
      if (auto ds = data::try_load_mnist(dir, train)) return *ds;
    }
    data::SyntheticMnistConfig cfg;
    cfg.num_samples = size;
    cfg.seed = seed;
    return data::make_synthetic_mnist(cfg);
  }
  if (const char* dir = std::getenv("QSNC_CIFAR_DIR")) {
    if (auto ds = data::try_load_cifar10(dir, train)) return *ds;
  }
  data::SyntheticCifarConfig cfg;
  cfg.num_samples = size;
  cfg.seed = seed;
  return data::make_synthetic_cifar(cfg);
}

core::TrainConfig base_config(const ModelChoice& model) {
  core::TrainConfig cfg;
  if (model.name == "lenet") {
    cfg.epochs = 14;
    cfg.lr = 5e-4f;
  } else if (model.name == "alexnet") {
    cfg.epochs = 14;
    cfg.lr = 1e-3f;
  } else {
    cfg.epochs = 10;
    cfg.lr = 1e-2f;
  }
  return cfg;
}

// A misspelled flag must never silently fall back to a default (imagine a
// load test running with --max-bacth ignored): unknown flags are fatal.
void check_unused(const util::Flags& flags) {
  const std::vector<std::string> unused = flags.unused();
  if (unused.empty()) return;
  for (const std::string& key : unused) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
  }
  std::exit(2);
}

int cmd_train(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  core::TrainConfig cfg = base_config(model);
  cfg.epochs = static_cast<int>(flags.get_int("epochs", cfg.epochs));
  cfg.lr = static_cast<float>(flags.get_double("lr", cfg.lr));
  cfg.seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  const int64_t train_size = flags.get_int("train-size", 1200);
  const bool use_nc = flags.get_bool("nc", false);
  const int bits = static_cast<int>(flags.get_int("bits", 4));
  const std::string out = flags.get("out", "");
  check_unused(flags);

  auto train_set = load_dataset(model, train_size, 1, true);
  nn::Rng rng(cfg.seed);
  nn::Network net = model.factory(rng);
  const std::string nc_note =
      use_nc ? " with Neuron Convergence @" + std::to_string(bits) + "-bit"
             : "";
  std::printf("training %s (%lld weights) for %d epochs%s...\n",
              model.name.c_str(), static_cast<long long>(net.num_weights()),
              cfg.epochs, nc_note.c_str());
  if (use_nc) {
    cfg.input_scale = std::min(
        cfg.input_scale, static_cast<float>(core::signal_max(bits)));
    core::NeuronConvergenceRegularizer reg(bits, 0.1f);
    core::train(net, *train_set, cfg, &reg, bits,
                std::max(0, cfg.epochs - 2));
  } else {
    core::train(net, *train_set, cfg);
  }
  const double acc = core::evaluate_accuracy(
      net, *load_dataset(model, 400, 999, false), cfg.input_scale);
  std::printf("held-out accuracy: %s\n", report::pct(acc).c_str());
  if (!out.empty()) {
    nn::save_state(net, out);
    std::printf("state written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_quantize(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  const std::string in = flags.get("state", "");
  if (in.empty()) throw std::invalid_argument("quantize needs --state");
  const int bits = static_cast<int>(flags.get_int("bits", 4));
  const std::string out = flags.get("out", in + ".q" + std::to_string(bits));
  check_unused(flags);

  nn::Rng rng(1);
  nn::Network net = model.factory(rng);
  nn::load_state(net, in);
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto results = core::apply_weight_clustering(net, wc);
  report::Table t({"tensor", "grid scale", "mse"});
  for (size_t i = 0; i < results.size(); ++i) {
    t.add_row({std::to_string(i), report::fmt(results[i].scale, 4),
               report::fmt(results[i].mse, 6)});
  }
  std::printf("%s", t.to_string().c_str());
  nn::save_state(net, out);
  std::printf("clustered state written to %s\n", out.c_str());
  return 0;
}

int cmd_eval(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  const std::string in = flags.get("state", "");
  if (in.empty()) throw std::invalid_argument("eval needs --state");
  const int bits = static_cast<int>(flags.get_int("bits", 0));
  const int64_t test_size = flags.get_int("test-size", 400);
  check_unused(flags);

  nn::Rng rng(1);
  nn::Network net = model.factory(rng);
  nn::load_state(net, in);
  auto test_set = load_dataset(model, test_size, 999, false);

  const float scale =
      bits > 0 ? std::min(16.0f, static_cast<float>(core::signal_max(bits)))
               : 16.0f;
  std::unique_ptr<core::IntegerSignalQuantizer> q;
  if (bits > 0) {
    q = std::make_unique<core::IntegerSignalQuantizer>(bits);
    net.set_signal_quantizer(q.get());
  }
  const core::EvalResult r =
      core::evaluate_detailed(net, *test_set, scale, bits);
  net.set_signal_quantizer(nullptr);

  const std::string bits_note =
      bits > 0 ? ", " + std::to_string(bits) + "-bit signals" : "";
  std::printf("accuracy: %s (%lld images%s)\n",
              report::pct(r.accuracy).c_str(),
              static_cast<long long>(test_set->size()), bits_note.c_str());
  report::Table t({"class", "recall"});
  for (int64_t c = 0; c < r.num_classes; ++c) {
    t.add_row({std::to_string(c), report::pct(r.recall(c))});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_deploy(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  const std::string in = flags.get("state", "");
  if (in.empty()) throw std::invalid_argument("deploy needs --state");
  const int bits = static_cast<int>(flags.get_int("bits", 4));
  const int64_t images = flags.get_int("images", 50);
  const int64_t batch_size =
      std::max<int64_t>(1, flags.get_int("batch", 8));
  const bool dense_reference = flags.get_bool("dense-reference", false);
  const double stuck_on = flags.get_double("stuck-on", 0.0);
  const double stuck_off = flags.get_double("stuck-off", 0.0);
  const double variation = flags.get_double("variation", 0.0);
  const bool write_verify = flags.get_bool("write-verify", false);
  const int64_t spare_cols = flags.get_int("spare-cols", 0);
  const uint64_t snc_seed =
      static_cast<uint64_t>(flags.get_int("snc-seed", 7));
  check_unused(flags);

  nn::Rng rng(1);
  nn::Network net = model.factory(rng);
  nn::load_state(net, in);

  // Recover the per-layer grid scales by re-clustering (idempotent when the
  // state is already on the grid: the Lloyd assignment reproduces it).
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig cfg;
  cfg.signal_bits = bits;
  cfg.weight_bits = bits;
  cfg.weight_scales.clear();
  for (const auto& r : wcr) cfg.weight_scales.push_back(r.scale);
  cfg.input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(bits)));
  cfg.engine = dense_reference ? snc::SncEngine::kDenseReference
                               : snc::SncEngine::kEventDriven;
  cfg.seed = snc_seed;
  cfg.device.stuck_on_rate = stuck_on;
  cfg.device.stuck_off_rate = stuck_off;
  cfg.device.variation_sigma = variation;
  cfg.recovery.write_verify = write_verify;
  cfg.recovery.spare_cols = spare_cols;
  snc::SncSystem system(net, model.input, cfg);

  auto test_set = load_dataset(model, std::max<int64_t>(images, 50), 999,
                               false);
  const int64_t chw = nn::shape_numel(model.input);
  int64_t correct = 0;
  snc::SncStats totals;
  int64_t total_spikes = 0;
  int64_t window_slots = 0;
  // Batch-native evaluation: B images share one pass over each stage's
  // panel. Per-image stats fold exactly as the historical per-image loop
  // did (infer_batch is bit-identical to B sequential infer calls).
  for (int64_t start = 0; start < images; start += batch_size) {
    const int64_t b = std::min(batch_size, images - start);
    nn::Tensor batch({b, model.input[0], model.input[1], model.input[2]});
    std::vector<int64_t> labels(static_cast<size_t>(b));
    for (int64_t j = 0; j < b; ++j) {
      const data::Sample s = test_set->get(start + j);
      std::copy(s.image.data(), s.image.data() + chw,
                batch.data() + j * chw);
      labels[static_cast<size_t>(j)] = s.label;
    }
    std::vector<snc::SncStats> batch_stats;
    const std::vector<int64_t> preds = system.infer_batch(batch,
                                                          &batch_stats);
    for (int64_t j = 0; j < b; ++j) {
      const snc::SncStats& stats = batch_stats[static_cast<size_t>(j)];
      if (preds[static_cast<size_t>(j)] == labels[static_cast<size_t>(j)]) {
        ++correct;
      }
      total_spikes += stats.total_spikes;
      window_slots = stats.window_slots;
      if (totals.stage.size() < stats.stage.size()) {
        totals.stage.resize(stats.stage.size());
      }
      for (size_t st = 0; st < stats.stage.size(); ++st) {
        totals.stage[st].rows = stats.stage[st].rows;
        totals.stage[st].cols = stats.stage[st].cols;
        totals.stage[st].positions += stats.stage[st].positions;
        totals.stage[st].input_events += stats.stage[st].input_events;
        totals.stage[st].spikes += stats.stage[st].spikes;
        totals.stage[st].occupied_slots += stats.stage[st].occupied_slots;
      }
    }
  }
  std::printf("SNC inference (%s engine, batch %lld): %lld/%lld correct, "
              "window %lld slots, avg %.0f spikes/image\n",
              dense_reference ? "dense-reference" : "event-driven",
              static_cast<long long>(batch_size),
              static_cast<long long>(correct),
              static_cast<long long>(images),
              static_cast<long long>(window_slots),
              static_cast<double>(total_spikes) /
                  static_cast<double>(images));
  report::Table activity({"stage", "rows", "cols", "events/img", "sparsity",
                          "spikes/img"});
  const double inv = 1.0 / static_cast<double>(images);
  for (size_t st = 0; st < totals.stage.size(); ++st) {
    const snc::SncStageStats& sg = totals.stage[st];
    activity.add_row(
        {std::to_string(st), std::to_string(sg.rows),
         std::to_string(sg.cols),
         report::fmt(static_cast<double>(sg.input_events) * inv, 1),
         report::pct(sg.input_sparsity(), 1),
         report::fmt(static_cast<double>(sg.spikes) * inv, 1)});
  }
  std::printf("%s", activity.to_string().c_str());
  if (cfg.recovery.enabled()) {
    const snc::FaultReport fr = system.fault_report();
    report::Table faults({"cells", "retries", "detected", "compensated",
                          "residual", "remapped", "spares left",
                          "refreshes"});
    faults.add_row({std::to_string(fr.cells),
                    std::to_string(fr.write_retries),
                    std::to_string(fr.faults_detected),
                    std::to_string(fr.faults_compensated),
                    std::to_string(fr.residual_faults),
                    std::to_string(fr.remapped_cols),
                    std::to_string(fr.spare_cols_left),
                    std::to_string(fr.refreshes)});
    std::printf("fault recovery:\n%s", faults.to_string().c_str());
  }
  return 0;
}

/// Parses "0.01,0.02,0.05" into doubles (throws on junk).
std::vector<double> parse_double_list(const std::string& csv) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t end = csv.find(',', pos);
    if (end == std::string::npos) end = csv.size();
    out.push_back(std::stod(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list '" + csv + "'");
  return out;
}

int cmd_faultsim(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  const std::string in = flags.get("state", "");
  const int bits = static_cast<int>(flags.get_int("bits", 4));
  const int64_t images = flags.get_int("images", 60);
  const int64_t batch_size =
      std::max<int64_t>(1, flags.get_int("batch", 8));
  const std::vector<double> rates =
      parse_double_list(flags.get("rates", "0.01,0.02,0.05"));
  const std::vector<double> spares =
      parse_double_list(flags.get("spares", "0,2,4"));
  const int seeds = std::max(1, static_cast<int>(flags.get_int("seeds", 3)));
  const int64_t train_size = flags.get_int("train-size", 800);
  const int epochs = static_cast<int>(flags.get_int("epochs", 4));
  check_unused(flags);

  nn::Rng rng(1);
  nn::Network net = model.factory(rng);
  float input_scale =
      std::min(16.0f, static_cast<float>(core::signal_max(bits)));
  if (!in.empty()) {
    nn::load_state(net, in);
  } else {
    // No checkpoint: train a small quantization-aware model so the sweep
    // has a real accuracy signal to degrade.
    core::TrainConfig tcfg = base_config(model);
    tcfg.epochs = epochs;
    tcfg.input_scale = input_scale;
    std::printf("no --state: training %s for %d epochs on synthetic data\n",
                model.name.c_str(), epochs);
    core::NeuronConvergenceRegularizer reg(bits, 0.1f);
    core::train(net, *load_dataset(model, train_size, 1, true), tcfg, &reg,
                bits, std::max(0, epochs - 2));
    input_scale = tcfg.input_scale;
  }
  core::WeightClusterConfig wc;
  wc.bits = bits;
  const auto wcr = core::apply_weight_clustering(net, wc);

  snc::SncConfig base;
  base.signal_bits = bits;
  base.weight_bits = bits;
  base.weight_scales.clear();
  for (const auto& r : wcr) base.weight_scales.push_back(r.scale);
  base.input_scale = input_scale;

  auto test_set = load_dataset(model, std::max<int64_t>(images, 50), 999,
                               false);
  const auto accuracy = [&](const snc::SncConfig& cfg,
                            snc::FaultReport* fr) {
    double acc = 0.0;
    snc::FaultReport total;
    for (int s = 0; s < seeds; ++s) {
      snc::SncConfig seeded = cfg;
      seeded.seed = 7 + static_cast<uint64_t>(s);
      snc::SncSystem sys(net, model.input, seeded);
      total.add(sys.fault_report());
      int64_t correct = 0;
      const int64_t chw = nn::shape_numel(model.input);
      for (int64_t start = 0; start < images; start += batch_size) {
        const int64_t b = std::min(batch_size, images - start);
        nn::Tensor batch(
            {b, model.input[0], model.input[1], model.input[2]});
        std::vector<int64_t> labels(static_cast<size_t>(b));
        for (int64_t j = 0; j < b; ++j) {
          const data::Sample sample = test_set->get(start + j);
          std::copy(sample.image.data(), sample.image.data() + chw,
                    batch.data() + j * chw);
          labels[static_cast<size_t>(j)] = sample.label;
        }
        const std::vector<int64_t> preds = sys.infer_batch(batch);
        for (int64_t j = 0; j < b; ++j) {
          if (preds[static_cast<size_t>(j)] ==
              labels[static_cast<size_t>(j)]) {
            ++correct;
          }
        }
      }
      acc += static_cast<double>(correct) / static_cast<double>(images);
    }
    if (fr != nullptr) *fr = total;
    return acc / seeds;
  };

  snc::SncConfig clean = base;
  const double fault_free = accuracy(clean, nullptr);
  std::printf("fault-free accuracy: %s (%lld images x %d seeds)\n",
              report::pct(fault_free).c_str(),
              static_cast<long long>(images), seeds);

  report::Table t({"stuck-on", "spares", "passive", "recovered",
                   "reclaimed pp", "residual", "remapped"});
  for (double rate : rates) {
    snc::SncConfig passive_cfg = base;
    passive_cfg.device.stuck_on_rate = rate;
    const double passive = accuracy(passive_cfg, nullptr);
    for (double spare : spares) {
      snc::SncConfig rec_cfg = passive_cfg;
      rec_cfg.recovery.write_verify = true;
      rec_cfg.recovery.spare_cols = static_cast<int64_t>(spare);
      snc::FaultReport fr;
      const double recovered = accuracy(rec_cfg, &fr);
      t.add_row({report::fmt(rate, 3),
                 std::to_string(static_cast<int64_t>(spare)),
                 report::pct(passive), report::pct(recovered),
                 report::fmt((recovered - passive) * 100.0, 1),
                 std::to_string(fr.residual_faults / seeds),
                 std::to_string(fr.remapped_cols / seeds)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("passive = defect injection only; recovered = write-verify + "
              "differential compensation + spare-column remap.\n");
  return 0;
}

int cmd_cost(const util::Flags& flags) {
  const ModelChoice model = resolve_model(flags.get("model", "lenet"));
  const int signal_bits = static_cast<int>(flags.get_int("signal-bits", 4));
  const int weight_bits = static_cast<int>(flags.get_int("weight-bits", 4));
  const int64_t crossbar = flags.get_int("crossbar", 32);
  check_unused(flags);

  nn::Rng rng(1);
  nn::Network net = model.full_factory(rng);
  const snc::ModelMapping mapping =
      snc::map_network(net, model.name, model.input, crossbar);
  snc::CostParams params;
  params.crossbar_size = crossbar;
  const snc::SystemCost cost =
      snc::evaluate_cost(mapping, signal_bits, weight_bits, params);
  std::printf("%s @ M=%d N=%d t=%lld: %lld layers, %lld crossbars, "
              "%.2f MHz, %.2f uJ/inf, %.2f mm2\n",
              model.name.c_str(), signal_bits, weight_bits,
              static_cast<long long>(crossbar),
              static_cast<long long>(cost.layers),
              static_cast<long long>(cost.crossbars), cost.speed_mhz,
              cost.energy_uj, cost.area_mm2);
  return 0;
}

serve::ModelConfig serve_model_config(const util::Flags& flags) {
  serve::ModelConfig cfg;
  // --model may be versioned ("lenet-mini@v1"); the architecture is the
  // base, the full spelling becomes the registry key in cmd_serve.
  cfg.architecture =
      serve::base_model_name(flags.get("model", "lenet-mini"));
  cfg.state_path = flags.get("state", "");
  cfg.backend = serve::parse_backend_kind(flags.get("backend", "fp32"));
  cfg.bits = static_cast<int>(flags.get_int("bits", 4));
  cfg.shards = static_cast<int>(flags.get_int("shards", 1));
  cfg.init_seed = static_cast<uint64_t>(flags.get_int("seed", 1));
  cfg.snc_replicas = static_cast<int>(flags.get_int("snc-replicas", 0));
  cfg.snc_dense_reference = flags.get_bool("snc-dense-reference", false);
  const std::string batch_native = flags.get("snc-batch-native", "on");
  if (batch_native == "on") {
    cfg.snc_batch_native = true;
  } else if (batch_native == "off") {
    cfg.snc_batch_native = false;
  } else {
    throw std::invalid_argument("--snc-batch-native takes on|off, got '" +
                                batch_native + "'");
  }
  cfg.snc_variation_sigma = flags.get_double("snc-variation", 0.0);
  cfg.snc_stuck_on_rate = flags.get_double("snc-stuck-on", 0.0);
  cfg.snc_stuck_off_rate = flags.get_double("snc-stuck-off", 0.0);
  cfg.snc_write_verify = flags.get_bool("snc-write-verify", false);
  cfg.snc_spare_cols = flags.get_int("snc-spare-cols", 0);
  cfg.snc_seed = static_cast<uint64_t>(flags.get_int("snc-seed", 7));
  cfg.snc_health.enabled = flags.get_bool("health", false);
  cfg.snc_health.check_interval_batches =
      static_cast<int>(flags.get_int("health-interval", 16));
  cfg.snc_health.canary_images =
      static_cast<int>(flags.get_int("health-canaries", 2));
  cfg.snc_health.min_healthy_fraction =
      flags.get_double("health-min-fraction", 0.5);
  cfg.snc_health.max_reprogram_attempts =
      static_cast<int>(flags.get_int("health-reprogram", 1));
  cfg.snc_health.per_replica_seeds =
      flags.get_bool("health-per-replica-seeds", false);
  return cfg;
}

serve::BatchOptions serve_batch_options(const util::Flags& flags) {
  serve::BatchOptions opts;
  opts.max_batch = static_cast<int>(flags.get_int("max-batch", 8));
  opts.batch_timeout_us = flags.get_int("batch-timeout-us", 2000);
  opts.queue_capacity = static_cast<int>(flags.get_int("queue-cap", 256));
  opts.admission.max_concurrency =
      static_cast<int>(flags.get_int("max-concurrency", 0));
  opts.admission.delay_target_us = flags.get_int("delay-target-us", 0);
  opts.admission.delay_window_us =
      flags.get_int("delay-window-us", opts.admission.delay_window_us);
  opts.admission.breaker_threshold =
      static_cast<int>(flags.get_int("breaker-threshold", 0));
  opts.admission.breaker_open_us =
      flags.get_int("breaker-open-ms",
                    opts.admission.breaker_open_us / 1000) *
      1000;
  return opts;
}

int cmd_serve(const util::Flags& flags) {
  const std::string model_name = flags.get("model", "lenet-mini");
  const serve::ModelConfig cfg = serve_model_config(flags);
  serve::BatchOptions opts = serve_batch_options(flags);
  serve::RolloutOptions rollout;
  rollout.shadow_fraction =
      flags.get_double("shadow-fraction", rollout.shadow_fraction);
  rollout.observe_requests = static_cast<int>(
      flags.get_int("rollout-observe", rollout.observe_requests));
  rollout.max_divergence =
      flags.get_double("max-divergence", rollout.max_divergence);
  rollout.canary_rounds = static_cast<int>(
      flags.get_int("rollout-canary-rounds", rollout.canary_rounds));
  rollout.canary_images = static_cast<int>(
      flags.get_int("rollout-canaries", rollout.canary_images));
  rollout.canary_interval_ms = flags.get_int("rollout-canary-interval-ms",
                                             rollout.canary_interval_ms);
  rollout.auto_decide = !flags.get_bool("rollout-manual", false);
  // --listen takes any endpoint spelling; --socket is the historical
  // unix-path alias (--listen wins when both are given).
  const std::string socket =
      flags.get("listen", flags.get("socket", "/tmp/qsnc-serve.sock"));
  const std::string journal_path = flags.get("journal", "");
  const std::string chaos_name = flags.get("chaos-profile", "none");
  const uint64_t chaos_seed =
      static_cast<uint64_t>(flags.get_int("chaos-seed", 42));
  serve::SocketServerOptions sopts;
  sopts.read_timeout_ms =
      flags.get_int("read-timeout-ms", sopts.read_timeout_ms);
  sopts.write_timeout_ms =
      flags.get_int("write-timeout-ms", sopts.write_timeout_ms);
  sopts.idle_timeout_ms =
      flags.get_int("idle-timeout-ms", sopts.idle_timeout_ms);
  sopts.max_connections =
      static_cast<int>(flags.get_int("max-connections",
                                     sopts.max_connections));
  check_unused(flags);

  const serve::ChaosConfig chaos_cfg =
      serve::chaos_profile(chaos_name, chaos_seed);
  std::unique_ptr<serve::ChaosInjector> chaos;
  if (chaos_cfg.any_enabled()) {
    chaos = std::make_unique<serve::ChaosInjector>(chaos_cfg);
    opts.chaos = chaos.get();
    sopts.chaos = chaos.get();
  }

  serve::ModelRegistry registry;
  registry.add(model_name, cfg);
  serve::ServeCore core(registry, opts, rollout);
  if (!journal_path.empty()) {
    // Replay + reconcile before the socket opens, so the first request
    // already sees the pre-crash active versions.
    const serve::JournalReconcileReport reconciled =
        core.attach_journal(journal_path, chaos.get());
    std::printf("%s\n", reconciled.to_string().c_str());
  }
  serve::SocketServer server(core, socket, sopts);
  const std::string state_note = cfg.state_path.empty()
                                     ? ", fresh init"
                                     : ", state " + cfg.state_path;
  std::printf("serving %s (%s backend%s) on %s\n"
              "  max-batch %d, batch-timeout %lld us, queue-cap %d; "
              "Ctrl-C drains and exits\n",
              model_name.c_str(),
              serve::backend_kind_name(cfg.backend), state_note.c_str(),
              server.socket_path().c_str(), opts.max_batch,
              static_cast<long long>(opts.batch_timeout_us),
              opts.queue_capacity);
  if (opts.admission.delay_target_us > 0 ||
      opts.admission.max_concurrency > 0 ||
      opts.admission.breaker_threshold > 0) {
    std::printf("  overload: max-concurrency %d, delay target %lld us "
                "(window %lld us), breaker %d failures / %lld ms open\n",
                opts.admission.max_concurrency,
                static_cast<long long>(opts.admission.delay_target_us),
                static_cast<long long>(opts.admission.delay_window_us),
                opts.admission.breaker_threshold,
                static_cast<long long>(opts.admission.breaker_open_us /
                                       1000));
  }
  if (cfg.shards > 1) {
    std::printf("  shards: %d identical batcher+backend lanes\n",
                cfg.shards);
  }
  if (chaos) {
    std::printf("  chaos: profile %s, seed %llu\n", chaos_name.c_str(),
                static_cast<unsigned long long>(chaos_seed));
  }
  server.run_until_signal();
  std::printf("drained; final stats:\n%s", core.stats_report().c_str());
  if (chaos) {
    std::printf("chaos injections (profile %s, seed %llu):\n%s",
                chaos_name.c_str(),
                static_cast<unsigned long long>(chaos_seed),
                chaos->report().c_str());
  }
  std::printf("connections: %llu accepted, %llu reaped, %llu rejected\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.connections_reaped()),
              static_cast<unsigned long long>(
                  server.connections_rejected()));
  return 0;
}

int cmd_router(const util::Flags& flags) {
  const std::string backends_csv = flags.get("backends", "");
  if (backends_csv.empty()) {
    throw std::invalid_argument("router needs --backends ep1,ep2,...");
  }
  router::RouterOptions opts;
  opts.backends = serve::parse_endpoint_list(backends_csv);
  opts.listen =
      serve::parse_endpoint(flags.get("listen", "tcp:127.0.0.1:7600"));
  opts.vnodes = static_cast<int>(flags.get_int("vnodes", opts.vnodes));
  opts.probe_interval_ms =
      flags.get_int("probe-interval-ms", opts.probe_interval_ms);
  opts.probe_timeout_ms =
      flags.get_int("probe-timeout-ms", opts.probe_timeout_ms);
  opts.probe_down_after = static_cast<int>(
      flags.get_int("probe-down-after", opts.probe_down_after));
  opts.forward_timeout_ms =
      flags.get_int("forward-timeout-ms", opts.forward_timeout_ms);
  opts.hedge_after_us = flags.get_int("hedge-after-us", 0);
  opts.breaker_threshold = static_cast<int>(
      flags.get_int("breaker-threshold", opts.breaker_threshold));
  opts.breaker_open_ms =
      flags.get_int("breaker-open-ms", opts.breaker_open_ms);
  opts.retry_tokens_per_sec =
      flags.get_double("retry-tokens-per-sec", opts.retry_tokens_per_sec);
  opts.retry_burst = flags.get_double("retry-burst", opts.retry_burst);
  opts.front.read_timeout_ms =
      flags.get_int("read-timeout-ms", opts.front.read_timeout_ms);
  opts.front.write_timeout_ms =
      flags.get_int("write-timeout-ms", opts.front.write_timeout_ms);
  opts.front.idle_timeout_ms =
      flags.get_int("idle-timeout-ms", opts.front.idle_timeout_ms);
  opts.front.max_connections = static_cast<int>(
      flags.get_int("max-connections", opts.front.max_connections));
  check_unused(flags);

  router::RouterServer server(opts);
  std::printf("routing on %s over %zu backends:\n",
              server.endpoint().str().c_str(), opts.backends.size());
  for (const serve::Endpoint& ep : opts.backends) {
    std::printf("  %s\n", ep.str().c_str());
  }
  const std::string hedge_note =
      opts.hedge_after_us > 0
          ? ", hedge after " + std::to_string(opts.hedge_after_us) + " us"
          : "";
  std::printf("  vnodes %d, probe every %lld ms (down after %d misses), "
              "forward timeout %lld ms%s; Ctrl-C exits\n",
              opts.vnodes, static_cast<long long>(opts.probe_interval_ms),
              opts.probe_down_after,
              static_cast<long long>(opts.forward_timeout_ms),
              hedge_note.c_str());
  server.run_until_signal();
  std::printf("router health table:\n%s",
              server.router().stats_report().c_str());
  return 0;
}

int cmd_loadgen(const util::Flags& flags) {
  // --connect takes any endpoint spelling; --socket is the historical
  // unix-path alias (--connect wins when both are given).
  const std::string socket =
      flags.get("connect", flags.get("socket", "/tmp/qsnc-serve.sock"));
  const std::string model = flags.get("model", "lenet-mini");
  const int64_t requests = flags.get_int("requests", 200);
  const int concurrency =
      std::max(1, static_cast<int>(flags.get_int("concurrency", 4)));
  const bool no_retry = flags.get_bool("no-retry", false);
  const bool open_loop = flags.get_bool("open-loop", false);
  const double rate = flags.get_double("rate", 0.0);
  const std::string priority_spec = flags.get("priority", "interactive");
  const int64_t max_retries = flags.get_int("max-retries", 64);
  const uint64_t deadline_us =
      static_cast<uint64_t>(flags.get_int("deadline-us", 0));
  const int64_t sessions = flags.get_int("sessions", 0);
  check_unused(flags);
  if (open_loop && rate <= 0.0) {
    throw std::invalid_argument("--open-loop needs --rate > 0");
  }

  // Request i's priority is a pure function of i, so a given
  // (requests, priority) pair always produces the same workload.
  const bool mix = priority_spec == "mix";
  const serve::Priority fixed_priority =
      mix ? serve::Priority::kInteractive
          : serve::parse_priority(priority_spec);
  const auto priority_of = [&](int64_t i) {
    if (!mix) return fixed_priority;
    const int64_t r = i % 10;  // 6:3:1 interactive:batch:canary
    if (r < 6) return serve::Priority::kInteractive;
    if (r < 9) return serve::Priority::kBatch;
    return serve::Priority::kCanary;
  };

  // A versioned target ("lenet-mini@v2") shapes its images off the base
  // architecture; the versioned spelling travels to the server, which
  // pins that exact registry entry.
  const nn::Shape chw =
      serve::architecture_input_shape(serve::base_model_name(model));

  struct ClassResult {
    int64_t sent = 0, ok = 0, retries = 0, shed = 0, dropped = 0,
            deadline_exceeded = 0, errors = 0;
    std::vector<uint64_t> latencies_us;

    void absorb(const ClassResult& r) {
      sent += r.sent;
      ok += r.ok;
      retries += r.retries;
      shed += r.shed;
      dropped += r.dropped;
      deadline_exceeded += r.deadline_exceeded;
      errors += r.errors;
      latencies_us.insert(latencies_us.end(), r.latencies_us.begin(),
                          r.latencies_us.end());
    }
  };
  struct WorkerResult {
    ClassResult per[serve::kNumPriorities];
  };
  std::vector<WorkerResult> results(static_cast<size_t>(concurrency));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& result = results[static_cast<size_t>(w)];
      try {
        serve::SocketClient client(socket);
        serve::BackoffConfig backoff_cfg;
        backoff_cfg.seed = 1000 + static_cast<uint64_t>(w);
        const serve::Backoff backoff(backoff_cfg);
        nn::Rng rng(1000 + static_cast<uint64_t>(w));
        // Workers take the strided slice i = w, w+C, ... so the open-loop
        // arrival time of every request, t0 + i/rate, is fixed by i alone.
        for (int64_t i = w; i < requests; i += concurrency) {
          const serve::Priority priority = priority_of(i);
          ClassResult& cls =
              result.per[static_cast<size_t>(priority)];
          if (open_loop) {
            std::this_thread::sleep_until(
                t0 + std::chrono::microseconds(static_cast<int64_t>(
                         static_cast<double>(i) * 1e6 / rate)));
          }
          nn::Tensor image(chw);
          for (int64_t j = 0; j < image.numel(); ++j) {
            image[j] = rng.uniform(0.0f, 1.0f);
          }
          ++cls.sent;
          // Session key: request i belongs to session i % K, so a router
          // in the path pins each session to one backend.
          const std::string session =
              sessions > 0 ? "s" + std::to_string(i % sessions)
                           : std::string();
          int64_t attempts = 0;
          for (;;) {
            const auto s0 = std::chrono::steady_clock::now();
            const serve::Response r =
                client.infer(model, image, deadline_us, priority, session);
            if (r.status == serve::Status::kOk) {
              const auto s1 = std::chrono::steady_clock::now();
              cls.latencies_us.push_back(static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      s1 - s0)
                      .count()));
              ++cls.ok;
              break;
            }
            if (r.status == serve::Status::kDeadlineExceeded) {
              // Its own outcome class: the budget the *client* set ran
              // out, which is neither a server error nor backpressure.
              ++cls.deadline_exceeded;
              break;
            }
            const bool backpressure =
                r.status == serve::Status::kRejected ||
                r.status == serve::Status::kShedded;
            if (r.status == serve::Status::kShedded) ++cls.shed;
            // Open loop never retries: the point is to measure what the
            // server does at a fixed offered rate, not to adapt to it.
            if (backpressure && !no_retry && !open_loop &&
                attempts < max_retries) {
              ++cls.retries;
              // Exponential backoff with deterministic per-worker jitter,
              // floored by the server's backpressure hint (capped so a
              // wild estimate cannot stall the generator).
              std::this_thread::sleep_for(std::chrono::microseconds(
                  backoff.delay_us(static_cast<int>(attempts),
                                   r.retry_after_us)));
              ++attempts;
              continue;
            }
            if (backpressure) {
              ++cls.dropped;
            } else {
              ++cls.errors;
              std::fprintf(stderr, "request failed (%s): %s\n",
                           serve::status_name(r.status), r.error.c_str());
            }
            break;
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %d: %s\n", w, e.what());
        ++result.per[static_cast<size_t>(serve::Priority::kInteractive)]
              .errors;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ClassResult per[serve::kNumPriorities];
  ClassResult total;
  for (const WorkerResult& r : results) {
    for (int c = 0; c < serve::kNumPriorities; ++c) {
      per[c].absorb(r.per[c]);
      total.absorb(r.per[c]);
    }
  }
  const auto pct = [](std::vector<uint64_t>& v, double p) -> uint64_t {
    if (v.empty()) return 0;
    const size_t idx = static_cast<size_t>(
        p / 100.0 * static_cast<double>(v.size() - 1));
    return v[idx];
  };
  report::Table t({"class", "sent", "ok", "retries", "shed", "dropped",
                   "deadline", "errors", "p50 us", "p95 us", "p99 us"});
  for (int c = serve::kNumPriorities - 1; c >= 0; --c) {
    ClassResult& r = per[c];
    if (r.sent == 0) continue;
    std::sort(r.latencies_us.begin(), r.latencies_us.end());
    t.add_row({serve::priority_name(static_cast<serve::Priority>(c)),
               std::to_string(r.sent), std::to_string(r.ok),
               std::to_string(r.retries), std::to_string(r.shed),
               std::to_string(r.dropped),
               std::to_string(r.deadline_exceeded),
               std::to_string(r.errors),
               std::to_string(pct(r.latencies_us, 50)),
               std::to_string(pct(r.latencies_us, 95)),
               std::to_string(pct(r.latencies_us, 99))});
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  t.add_row({"total", std::to_string(total.sent),
             std::to_string(total.ok), std::to_string(total.retries),
             std::to_string(total.shed), std::to_string(total.dropped),
             std::to_string(total.deadline_exceeded),
             std::to_string(total.errors),
             std::to_string(pct(total.latencies_us, 50)),
             std::to_string(pct(total.latencies_us, 95)),
             std::to_string(pct(total.latencies_us, 99))});
  std::printf("%s", t.to_string().c_str());
  const std::string offered_note =
      open_loop ? ", offered " + report::fmt(rate, 1) + " QPS" : "";
  std::printf("wall %.2fs, goodput %.1f QPS%s\n", wall,
              wall > 0 ? static_cast<double>(total.ok) / wall : 0.0,
              offered_note.c_str());
  try {
    serve::SocketClient client(socket);
    std::printf("server-side stats:\n%s", client.stats().c_str());
  } catch (const std::exception&) {
    // Server may already be gone; client-side numbers stand alone.
  }
  // Shedded/rejected responses in open loop are the server working as
  // intended, not a failure of the run.
  if (total.errors > 0) return 1;
  return !open_loop && total.dropped > 0 ? 1 : 0;
}

std::vector<uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read failed on '" + path + "'");
  }
  return bytes;
}

int cmd_rollout(const util::Flags& flags) {
  if (flags.positional().size() < 2) {
    throw std::invalid_argument(
        "rollout needs a verb: load|promote|rollback|status");
  }
  const std::string verb = flags.positional()[1];
  const std::string socket =
      flags.get("connect", flags.get("socket", "/tmp/qsnc-serve.sock"));
  const std::string model = flags.get("model", "");
  serve::RolloutReply reply;
  if (verb == "load") {
    if (model.empty()) {
      throw std::invalid_argument(
          "rollout load needs --model base@version");
    }
    serve::LoadVersionRequest request;
    request.name = model;
    request.architecture = flags.get("arch", "");
    request.backend_kind = flags.get("backend", "");
    request.bits = static_cast<uint8_t>(flags.get_int("bits", 0));
    request.init_seed = static_cast<uint64_t>(flags.get_int("seed", 1));
    const std::string state_path = flags.get("state", "");
    if (!state_path.empty()) {
      request.state = read_file_bytes(state_path);
    }
    check_unused(flags);
    serve::SocketClient client(socket);
    reply = client.load_version(request);
  } else if (verb == "promote") {
    check_unused(flags);
    serve::SocketClient client(socket);
    reply = client.promote(model);
  } else if (verb == "rollback") {
    const std::string reason = flags.get("reason", "");
    check_unused(flags);
    serve::SocketClient client(socket);
    reply = client.rollback(model, reason);
  } else if (verb == "status") {
    check_unused(flags);
    serve::SocketClient client(socket);
    reply = client.rollout_status(model);
  } else {
    throw std::invalid_argument("unknown rollout verb '" + verb +
                                "' (load|promote|rollback|status)");
  }
  std::printf("%s%s%s", reply.ok ? "" : "refused: ",
              reply.message.c_str(),
              reply.message.empty() || reply.message.back() == '\n' ? ""
                                                                    : "\n");
  return reply.ok ? 0 : 1;
}

int cmd_supervisor(const util::Flags& flags) {
  const std::string verb =
      flags.positional().size() >= 2 ? flags.positional()[1] : "run";
  if (verb == "status" || verb == "release") {
    // Operator verbs against a running supervisor's control endpoint.
    const std::string connect = flags.get("connect", "");
    if (connect.empty()) {
      throw std::invalid_argument("supervisor " + verb +
                                  " needs --connect endpoint");
    }
    const std::string lane = flags.get("lane", "");
    if (verb == "release" && lane.empty()) {
      throw std::invalid_argument("supervisor release needs --lane name");
    }
    check_unused(flags);
    serve::SocketClient client(connect);
    const serve::RolloutReply reply = client.supervise(verb, lane);
    std::printf("%s%s%s", reply.ok ? "" : "refused: ",
                reply.message.c_str(),
                reply.message.empty() || reply.message.back() == '\n'
                    ? ""
                    : "\n");
    return reply.ok ? 0 : 1;
  }
  if (verb != "run") {
    throw std::invalid_argument("unknown supervisor verb '" + verb +
                                "' (run|status|release)");
  }
  const std::string spec_path = flags.get("spec", "");
  if (spec_path.empty()) {
    throw std::invalid_argument("supervisor needs --spec file");
  }
  supervise::SupervisorOptions opts;
  opts.crash_loop.quarantine_exits = static_cast<int>(
      flags.get_int("quarantine-exits", opts.crash_loop.quarantine_exits));
  opts.crash_loop.window_us =
      flags.get_int("quarantine-window-ms",
                    opts.crash_loop.window_us / 1000) *
      1000;
  opts.crash_loop.healthy_reset_us =
      flags.get_int("healthy-reset-ms",
                    opts.crash_loop.healthy_reset_us / 1000) *
      1000;
  opts.crash_loop.backoff.base_us =
      static_cast<uint64_t>(flags.get_int(
          "restart-base-ms",
          static_cast<int64_t>(opts.crash_loop.backoff.base_us / 1000))) *
      1000;
  opts.crash_loop.backoff.max_us =
      static_cast<uint64_t>(flags.get_int(
          "restart-max-ms",
          static_cast<int64_t>(opts.crash_loop.backoff.max_us / 1000))) *
      1000;
  opts.drain_timeout_ms =
      flags.get_int("drain-timeout-ms", opts.drain_timeout_ms);
  const std::string listen = flags.get("listen", "");
  check_unused(flags);

  const supervise::SupervisorSpec spec =
      supervise::load_supervisor_spec(spec_path);
  supervise::Supervisor supervisor(spec, opts);
  supervisor.start();
  std::printf("supervising %zu lane(s) from %s:\n", spec.lanes.size(),
              spec_path.c_str());
  for (const supervise::LaneSpec& lane : spec.lanes) {
    std::string argv_line;
    for (const std::string& a : lane.argv) {
      argv_line += (argv_line.empty() ? "" : " ") + a;
    }
    std::printf("  %s = %s\n", lane.name.c_str(), argv_line.c_str());
  }
  std::printf("  crash loop: quarantine after %d exits / %llds window; "
              "drain %lld ms; Ctrl-C drains children and exits\n",
              opts.crash_loop.quarantine_exits,
              static_cast<long long>(opts.crash_loop.window_us / 1000000),
              static_cast<long long>(opts.drain_timeout_ms));
  supervise::SupervisorFrameHandler handler(supervisor);
  std::unique_ptr<serve::SocketServer> control;
  if (!listen.empty()) {
    control = std::make_unique<serve::SocketServer>(
        handler, serve::parse_endpoint(listen));
    std::printf("  control endpoint on %s\n",
                control->endpoint().str().c_str());
  }
  supervisor.run_until_signal();
  if (control != nullptr) control->stop();
  std::printf("supervisor drained; final lane table:\n%s",
              supervisor.status_report().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Boolean flags must be declared so "--nc lenet" style argv never eats
    // a positional (see util/flags.h).
    const util::Flags flags(
        argc, argv, {"nc", "no-retry", "open-loop", "dense-reference",
                     "snc-dense-reference", "write-verify",
                     "snc-write-verify", "health",
                     "health-per-replica-seeds", "rollout-manual"});
    const int64_t threads = flags.get_int("threads", 0);
    if (threads > 0) util::set_num_threads(static_cast<int>(threads));
    if (flags.positional().empty()) {
      std::fprintf(
          stderr,
          "usage: qsnc "
          "<train|quantize|eval|deploy|faultsim|cost|serve|router|rollout|"
          "loadgen|supervisor> [flags]\n"
          "see the header of tools/qsnc.cpp for details\n");
      return 2;
    }
    const std::string& cmd = flags.positional()[0];
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "quantize") return cmd_quantize(flags);
    if (cmd == "eval") return cmd_eval(flags);
    if (cmd == "deploy") return cmd_deploy(flags);
    if (cmd == "faultsim") return cmd_faultsim(flags);
    if (cmd == "cost") return cmd_cost(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "router") return cmd_router(flags);
    if (cmd == "rollout") return cmd_rollout(flags);
    if (cmd == "loadgen") return cmd_loadgen(flags);
    if (cmd == "supervisor") return cmd_supervisor(flags);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
